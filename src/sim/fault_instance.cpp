#include "sim/fault_instance.hpp"

#include "common/error.hpp"

namespace mtg {
namespace {

/// All strictly ascending k-subsets of {0..n-1}.
std::vector<std::vector<std::size_t>> ascending_subsets(std::size_t n,
                                                        std::size_t k) {
  std::vector<std::vector<std::size_t>> result;
  if (k == 0 || k > n) return result;
  std::vector<std::size_t> pick(k);
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  while (true) {
    result.push_back(pick);
    std::size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (pick[i] != i + n - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return result;
  }
}

}  // namespace

std::vector<FaultInstance> instantiate(const SimpleFault& fault, std::size_t n,
                                       std::size_t fault_index) {
  std::vector<FaultInstance> result;
  const std::size_t k = fault.num_cells();
  require(n >= k, "memory too small for the fault layout");
  for (const auto& cells : ascending_subsets(n, k)) {
    const std::size_t v = cells[fault.v_pos];
    const std::size_t a = fault.a_pos >= 0 ? cells[fault.a_pos] : v;
    FaultInstance inst;
    inst.fault_index = fault_index;
    inst.fps.push_back(BoundFp(fault.fp, a, v));
    inst.description = fault.name + " @ " + inst.fps[0].to_string();
    result.push_back(std::move(inst));
  }
  return result;
}

std::vector<FaultInstance> instantiate(const LinkedFault& fault, std::size_t n,
                                       std::size_t fault_index) {
  std::vector<FaultInstance> result;
  const std::size_t k = fault.num_cells();
  require(n >= k, "memory too small for the fault layout");
  const LinkedLayout& layout = fault.layout();
  for (const auto& cells : ascending_subsets(n, k)) {
    const std::size_t v = cells[layout.v_pos];
    const std::size_t a1 = layout.a1_pos >= 0 ? cells[layout.a1_pos] : v;
    const std::size_t a2 = layout.a2_pos >= 0 ? cells[layout.a2_pos] : v;
    FaultInstance inst;
    inst.fault_index = fault_index;
    inst.fps.push_back(BoundFp(fault.fp1(), a1, v));
    inst.fps.push_back(BoundFp(fault.fp2(), a2, v));
    inst.description = fault.name() + " @ v=" + std::to_string(v) +
                       " a1=" + std::to_string(a1) + " a2=" + std::to_string(a2);
    result.push_back(std::move(inst));
  }
  return result;
}

std::vector<FaultInstance> instantiate_all(const FaultList& list,
                                           std::size_t n) {
  std::vector<FaultInstance> result;
  std::size_t index = 0;
  for (const SimpleFault& f : list.simple) {
    auto instances = instantiate(f, n, index++);
    result.insert(result.end(), instances.begin(), instances.end());
  }
  for (const LinkedFault& f : list.linked) {
    auto instances = instantiate(f, n, index++);
    result.insert(result.end(), instances.begin(), instances.end());
  }
  return result;
}

std::size_t fault_count(const FaultList& list) {
  return list.simple.size() + list.linked.size();
}

std::string fault_name(const FaultList& list, std::size_t index) {
  require(index < fault_count(list), "fault index out of range");
  if (index < list.simple.size()) return list.simple[index].name;
  return list.linked[index - list.simple.size()].name();
}

}  // namespace mtg
