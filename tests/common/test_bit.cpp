#include "common/bit.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtg {
namespace {

TEST(Bit, FlipIsInvolutive) {
  EXPECT_EQ(flip(Bit::Zero), Bit::One);
  EXPECT_EQ(flip(Bit::One), Bit::Zero);
  EXPECT_EQ(flip(flip(Bit::Zero)), Bit::Zero);
  EXPECT_EQ(flip(flip(Bit::One)), Bit::One);
}

TEST(Bit, IntConversions) {
  EXPECT_EQ(to_int(Bit::Zero), 0);
  EXPECT_EQ(to_int(Bit::One), 1);
  EXPECT_EQ(bit_from_int(0), Bit::Zero);
  EXPECT_EQ(bit_from_int(1), Bit::One);
  EXPECT_THROW(bit_from_int(2), Error);
  EXPECT_THROW(bit_from_int(-1), Error);
}

TEST(Bit, CharConversions) {
  EXPECT_EQ(to_char(Bit::Zero), '0');
  EXPECT_EQ(to_char(Bit::One), '1');
  EXPECT_EQ(bit_from_char('0'), Bit::Zero);
  EXPECT_EQ(bit_from_char('1'), Bit::One);
  EXPECT_THROW(bit_from_char('x'), Error);
  EXPECT_THROW(bit_from_char('-'), Error);
}

TEST(Bit, Streaming) {
  std::ostringstream out;
  out << Bit::Zero << Bit::One;
  EXPECT_EQ(out.str(), "01");
}

TEST(Tri, LiftAndExtract) {
  EXPECT_EQ(to_tri(Bit::Zero), Tri::Zero);
  EXPECT_EQ(to_tri(Bit::One), Tri::One);
  EXPECT_EQ(to_bit(Tri::Zero), Bit::Zero);
  EXPECT_EQ(to_bit(Tri::One), Bit::One);
  EXPECT_THROW(to_bit(Tri::X), Error);
}

TEST(Tri, Concreteness) {
  EXPECT_TRUE(is_concrete(Tri::Zero));
  EXPECT_TRUE(is_concrete(Tri::One));
  EXPECT_FALSE(is_concrete(Tri::X));
}

TEST(Tri, DontCareMatchesBoth) {
  EXPECT_TRUE(matches(Tri::X, Bit::Zero));
  EXPECT_TRUE(matches(Tri::X, Bit::One));
  EXPECT_TRUE(matches(Tri::Zero, Bit::Zero));
  EXPECT_FALSE(matches(Tri::Zero, Bit::One));
  EXPECT_TRUE(matches(Tri::One, Bit::One));
  EXPECT_FALSE(matches(Tri::One, Bit::Zero));
}

TEST(Tri, CharConversions) {
  EXPECT_EQ(to_char(Tri::X), '-');
  EXPECT_EQ(tri_from_char('-'), Tri::X);
  EXPECT_EQ(tri_from_char('0'), Tri::Zero);
  EXPECT_EQ(tri_from_char('1'), Tri::One);
  EXPECT_THROW(tri_from_char('?'), Error);
}

}  // namespace
}  // namespace mtg
