#include "format/fault_list_text.hpp"

#include <regex>
#include <string>

#include "common/error.hpp"
#include "format/reader.hpp"

namespace mtg {
namespace {

// One pattern per record type, matched against the whole (trimmed) line;
// capture positions yield the column of the offending field.
// clang-format off
const std::regex re_simple{
//  simple <0w1/0/-> a_pos=-1 v_pos=0
    R"(simple[ \t]+(<[^<>]*>)[ \t]+a_pos=(-?[0-9]+)[ \t]+v_pos=(-?[0-9]+))"};
const std::regex re_linked{
//  linked <0w0;0/1/-> -> <1;0w0/1/-> cells=2 a1=0 a2=-1 v=1
    R"(linked[ \t]+(<[^<>]*>)[ \t]+->[ \t]+(<[^<>]*>)[ \t]+cells=(-?[0-9]+)[ \t]+a1=(-?[0-9]+)[ \t]+a2=(-?[0-9]+)[ \t]+v=(-?[0-9]+))"};
const std::regex re_decoder{
//  decoder cls=2 bit=3 wired=1
    R"(decoder[ \t]+cls=(-?[0-9]+)[ \t]+bit=(-?[0-9]+)[ \t]+wired=(-?[0-9]+))"};
// clang-format on

/// 1-based column of capture group `group` within the current line.
std::size_t group_column(const std::cmatch& match, std::size_t group) {
  return static_cast<std::size_t>(match.position(group)) + 1;
}

/// Parses capture `group` as an integer in [min, max]; fails at its column.
long long record_int(const LineReader& reader, const std::cmatch& match,
                     std::size_t group, long long min, long long max,
                     const char* field) {
  const std::string digits = match.str(group);
  long long value = 0;
  try {
    value = std::stoll(digits);
  } catch (const std::exception&) {
    reader.fail(group_column(match, group),
                std::string(field) + " out of range: '" + digits + "'");
  }
  if (value < min || value > max) {
    reader.fail(group_column(match, group),
                std::string(field) + " must be in [" + std::to_string(min) +
                    ", " + std::to_string(max) + "], got " + digits);
  }
  return value;
}

/// Parses capture `group` as FP notation; re-anchors sub-token errors.
FaultPrimitive record_fp(const LineReader& reader, const std::cmatch& match,
                         std::size_t group) {
  const std::string token = match.str(group);
  try {
    return FaultPrimitive::from_notation(token);
  } catch (const ParseError& e) {
    reader.fail(group_column(match, group) + e.offset(), e.detail());
  }
}

bool match_record(const LineReader& reader, std::string_view keyword,
                  const std::regex& pattern, std::cmatch& match,
                  const char* expected_shape) {
  const std::string_view line = reader.line();
  const std::string_view first = line.substr(0, line.find_first_of(" \t"));
  if (first != keyword) return false;
  if (!std::regex_match(line.data(), line.data() + line.size(), match,
                        pattern)) {
    reader.fail(1, "malformed '" + std::string(keyword) +
                       "' record; expected: " + expected_shape);
  }
  return true;
}

void read_simple(const LineReader& reader, FaultList& list,
                 const std::cmatch& match) {
  const FaultPrimitive fp = record_fp(reader, match, 1);
  const long long a_pos = record_int(reader, match, 2, -1, 1, "a_pos");
  const long long v_pos = record_int(reader, match, 3, 0, 1, "v_pos");
  // Rebuild through the factories so the derived display name matches the
  // built-in lists byte for byte.
  if (!fp.is_two_cell()) {
    if (a_pos != -1) {
      reader.fail(group_column(match, 2),
                  "a single-cell simple fault has no aggressor (a_pos=-1)");
    }
    if (v_pos != 0) {
      reader.fail(group_column(match, 3),
                  "a single-cell simple fault occupies position 0 (v_pos=0)");
    }
    list.simple.push_back(SimpleFault::single(fp));
    return;
  }
  if (!((a_pos == 0 && v_pos == 1) || (a_pos == 1 && v_pos == 0))) {
    reader.fail(group_column(match, 2),
                "a two-cell simple fault needs {a_pos, v_pos} = {0, 1}");
  }
  list.simple.push_back(SimpleFault::coupled(fp, /*aggressor_below=*/a_pos == 0));
}

void read_linked(const LineReader& reader, FaultList& list,
                 const std::cmatch& match) {
  const FaultPrimitive fp1 = record_fp(reader, match, 1);
  const FaultPrimitive fp2 = record_fp(reader, match, 2);
  LinkedLayout layout;
  layout.num_cells = static_cast<std::uint8_t>(
      record_int(reader, match, 3, 1, 3, "cells"));
  layout.a1_pos =
      static_cast<std::int8_t>(record_int(reader, match, 4, -1, 2, "a1"));
  layout.a2_pos =
      static_cast<std::int8_t>(record_int(reader, match, 5, -1, 2, "a2"));
  layout.v_pos =
      static_cast<std::uint8_t>(record_int(reader, match, 6, 0, 2, "v"));
  // The LinkedFault constructor re-validates the layout coherence and the
  // Definition 6/7 linking conditions — a catalog cannot smuggle in a pair
  // the enumeration machinery would reject.
  try {
    list.linked.emplace_back(fp1, fp2, layout);
  } catch (const Error& e) {
    reader.fail(1, e.what());
  }
}

void read_decoder(const LineReader& reader, FaultList& list,
                  const std::cmatch& match) {
  DecoderFault fault;
  fault.cls = static_cast<DecoderFaultClass>(
      record_int(reader, match, 1, 0, 3,
                 "cls (0=AFna no-access, 1=AFwc wrong-cell, 2=AFmc "
                 "multiple-cells, 3=AFma multiple-addresses)"));
  // 2^bit must fit a std::size_t address: same bound as decoder_fault_list.
  fault.bit = static_cast<std::size_t>(
      record_int(reader, match, 2, 0, 62, "bit (address line)"));
  fault.wired = record_int(reader, match, 3, 0, 1,
                           "wired (0=wired-AND, 1=wired-OR)") == 1
                    ? Bit::One
                    : Bit::Zero;
  list.decoder.push_back(fault);
}

}  // namespace

FaultList parse_fault_list_text(std::string_view text,
                                const std::string& source,
                                FaultListPositions* positions) {
  LineReader reader(text, source);
  if (!reader.next()) {
    reader.fail_at_end("empty document: expected 'faultlist v1' header");
  }
  if (reader.line() != "faultlist v1") {
    if (reader.line().substr(0, 9) == "faultlist") {
      reader.fail(10, "unsupported fault-list format version (this reader "
                      "understands 'faultlist v1')");
    }
    reader.fail(1, "expected 'faultlist v1' header, got '" +
                       std::string(reader.line()) + "'");
  }
  FaultList list;
  while (reader.next()) {
    const std::string_view line = reader.line();
    std::cmatch match;
    if (line.substr(0, 4) == "name") {
      const std::size_t rest = line.find_first_not_of(" \t", 4);
      if (line.size() > 4 && line[4] != ' ' && line[4] != '\t') {
        // fall through to the unknown-record diagnostic below
      } else if (rest == std::string_view::npos) {
        reader.fail(5, "empty list name");
      } else {
        list.name = std::string(line.substr(rest));
        continue;
      }
    }
    const TextPosition record_position{reader.line_number(),
                                       reader.line_indent()};
    if (match_record(reader, "simple", re_simple, match,
                     "simple <S/F/R> a_pos=<-1|0|1> v_pos=<0|1>")) {
      read_simple(reader, list, match);
      if (positions != nullptr) positions->simple.push_back(record_position);
    } else if (match_record(reader, "linked", re_linked, match,
                            "linked <S/F/R> -> <S/F/R> cells=<1..3> "
                            "a1=<-1..2> a2=<-1..2> v=<0..2>")) {
      read_linked(reader, list, match);
      if (positions != nullptr) positions->linked.push_back(record_position);
    } else if (match_record(reader, "decoder", re_decoder, match,
                            "decoder cls=<0..3> bit=<0..62> wired=<0|1>")) {
      read_decoder(reader, list, match);
      if (positions != nullptr) positions->decoder.push_back(record_position);
    } else {
      reader.fail(1, "unknown record '" +
                         std::string(line.substr(0, line.find_first_of(" \t"))) +
                         "' (expected name, simple, linked or decoder)");
    }
  }
  return list;
}

}  // namespace mtg
