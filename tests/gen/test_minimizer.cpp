#include "gen/minimizer.hpp"

#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

std::vector<FaultInstance> instances_for(const FaultList& list, std::size_t n) {
  return instantiate_all(list, n);
}

TEST(Minimizer, CoversAllAgreesWithCoverage) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  EXPECT_TRUE(covers_all(simulator, march_abl1(), instances));
  EXPECT_FALSE(covers_all(simulator, mats_plus(), instances));
}

TEST(Minimizer, CoversAllRejectsInvalidTests) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const MarchTest invalid = parse_march_test("{c(r1)}", "bad");
  EXPECT_FALSE(covers_all(simulator, invalid, {}));
}

TEST(Minimizer, RemovesRedundantElements) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);

  // ABL1 padded with useless work.
  MarchTest padded = parse_march_test(
      "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0); c(r0,w1); c(r1,w0)}", "padded");
  ASSERT_TRUE(covers_all(simulator, padded, instances));

  std::vector<std::string> log;
  const MarchTest minimized = minimize_test(simulator, padded, instances, &log);
  EXPECT_LT(minimized.complexity(), padded.complexity());
  EXPECT_LE(minimized.complexity(), march_abl1().complexity());
  EXPECT_TRUE(covers_all(simulator, minimized, instances));
  EXPECT_FALSE(log.empty());
}

TEST(Minimizer, MinimalTestIsAFixpoint) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  const MarchTest once = minimize_test(simulator, march_abl1(), instances);
  const MarchTest twice = minimize_test(simulator, once, instances);
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(covers_all(simulator, once, instances));
}

TEST(Minimizer, PreservesCoverageProperty) {
  // Property: for several tests and lists, minimization never loses
  // coverage and never increases complexity.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  for (const MarchTest& test : {march_abl1(), march_lf1(), march_ss()}) {
    const MarchTest minimized = minimize_test(simulator, test, instances);
    EXPECT_LE(minimized.complexity(), test.complexity()) << test.name();
    EXPECT_TRUE(covers_all(simulator, minimized, instances)) << test.name();
  }
}

TEST(Minimizer, SingleElementTestsAreReturnedUnchanged) {
  // Both inner loops must handle the degenerate shapes: one element is never
  // dropped (the test would vanish), and a one-op element is left to the
  // element-removal pass.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  for (const char* notation : {"{c(w0)}", "{c(w0,r0)}"}) {
    const MarchTest test = parse_march_test(notation, "tiny");
    std::vector<std::string> log;
    const MarchTest minimized = minimize_test(simulator, test, {}, &log);
    // With no instances to keep covered, only op-dropping inside the
    // two-op element can fire; the single-op test is a strict fixpoint.
    EXPECT_TRUE(covers_all(simulator, minimized, {}));
    EXPECT_GE(minimized.elements().size(), 1u);
    EXPECT_EQ(minimize_test(simulator, minimized, {}, nullptr), minimized);
  }
}

TEST(Minimizer, NoOpMinimizationLeavesTheLogEmpty) {
  // An already-minimal test must come back identical with an untouched log
  // (callers use the log to report what changed — no change, no lines).
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultList list;
  list.name = "tf only";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::One)));
  const auto instances = instances_for(list, 4);
  const MarchTest minimal =
      minimize_test(simulator, parse_march_test("{c(w0); ^(w1,r1,w0,r0)}",
                                                "tight"),
                    instances);
  std::vector<std::string> log;
  const MarchTest again = minimize_test(simulator, minimal, instances, &log);
  EXPECT_EQ(again, minimal);
  EXPECT_TRUE(log.empty());
}

TEST(Minimizer, PreservesValidityAndWaitsForRetentionTargets) {
  // Minimizing against retention (t-op) instances must neither break test
  // validity nor strip the waits that make the coverage possible.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultList list;
  list.name = "simple DRFs";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::drf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::drf(Bit::One)));
  const auto instances = instances_for(list, 4);
  ASSERT_TRUE(covers_all(simulator, march_g(), instances));

  std::vector<std::string> log;
  const MarchTest minimized =
      minimize_test(simulator, march_g(), instances, &log);
  EXPECT_TRUE(FaultSimulator::validity_violation(minimized).empty());
  EXPECT_TRUE(minimized.contains_wait());
  EXPECT_TRUE(covers_all(simulator, minimized, instances));
  EXPECT_LE(minimized.complexity(), march_g().complexity());
}

TEST(Minimizer, DropsOpsInsideElements) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  // Cover only the transition faults; the double reads are redundant.
  FaultList list;
  list.name = "tf only";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::One)));
  const auto instances = instances_for(list, 4);
  const MarchTest bloated =
      parse_march_test("{c(w0); ^(r0,r0,w1,r1,r1); ^(r1,w0,r0)}", "bloated");
  const MarchTest minimized =
      minimize_test(simulator, bloated, instances, nullptr);
  EXPECT_LT(minimized.complexity(), bloated.complexity());
  EXPECT_TRUE(covers_all(simulator, minimized, instances));
}

}  // namespace
}  // namespace mtg
