#include "common/address_order.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(AddressOrder, Symbols) {
  EXPECT_EQ(to_symbol(AddressOrder::Up), "⇑");
  EXPECT_EQ(to_symbol(AddressOrder::Down), "⇓");
  EXPECT_EQ(to_symbol(AddressOrder::Any), "⇕");
}

TEST(AddressOrder, Ascii) {
  EXPECT_EQ(to_ascii(AddressOrder::Up), '^');
  EXPECT_EQ(to_ascii(AddressOrder::Down), 'v');
  EXPECT_EQ(to_ascii(AddressOrder::Any), 'c');
}

TEST(AddressOrder, ParseAllForms) {
  for (AddressOrder order :
       {AddressOrder::Up, AddressOrder::Down, AddressOrder::Any}) {
    EXPECT_EQ(address_order_from_string(to_symbol(order)), order);
    EXPECT_EQ(address_order_from_string(std::string(1, to_ascii(order))), order);
  }
  EXPECT_EQ(address_order_from_string("up"), AddressOrder::Up);
  EXPECT_EQ(address_order_from_string("down"), AddressOrder::Down);
  EXPECT_EQ(address_order_from_string("any"), AddressOrder::Any);
  EXPECT_THROW(address_order_from_string("sideways"), Error);
  EXPECT_THROW(address_order_from_string(""), Error);
}

}  // namespace
}  // namespace mtg
