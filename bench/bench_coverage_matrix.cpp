// Section 6 validation claim: every published march test fault-simulated
// against the reconstructed fault lists.  Prints the coverage matrix
// (tests × fault lists) that underpins the paper's comparison columns.
//
// Usage: bench_coverage_matrix [memory_size]   (default n = 6)
#include <cstdio>
#include <exception>

#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

int main(int argc, char** argv) {
  using namespace mtg;
  std::size_t n = 6;
  if (argc > 1) {
    // Validated parsing (common/parse.hpp): the old std::atoi silently
    // turned garbage into n = 0 and simulated a zero-cell memory.
    try {
      n = parse_memory_size(argv[1], "memory size");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\nusage: bench_coverage_matrix [n >= 3]\n",
                   e.what());
      return 2;
    }
  }
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});

  const FaultList list2 = fault_list_2();
  const FaultList list1 = fault_list_1();
  const FaultList simple = standard_simple_static_faults();

  std::printf("Fault coverage matrix (simulated memory n=%zu)\n", n);
  std::printf("%-12s %6s %14s %14s %14s\n", "Test", "O(n)", "List #2",
              "List #1", "simple static");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const MarchTest& test : all_catalog_tests()) {
    const double c2 =
        evaluate_coverage(simulator, test, list2).fault_coverage_percent();
    const double c1 =
        evaluate_coverage(simulator, test, list1).fault_coverage_percent();
    const double cs =
        evaluate_coverage(simulator, test, simple).fault_coverage_percent();
    std::printf("%-12s %5zun %13.2f%% %13.2f%% %13.2f%%\n",
                test.name().c_str(), test.complexity(), c2, c1, cs);
  }
  std::printf(
      "\nExpected shape: classic tests (MATS+ ... March U) stay well below "
      "100%% on the linked lists;\nMarch SL reaches 100%% on both; March "
      "LF1/ABL1 reach 100%% on List #2 only.\n");
  return 0;
}
