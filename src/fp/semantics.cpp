#include "fp/semantics.hpp"

#include <cassert>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

BoundFp::BoundFp(FaultPrimitive f, std::size_t a, std::size_t v)
    : fp(std::move(f)), a_cell(a), v_cell(v) {
  if (fp.is_two_cell()) {
    require(a_cell != v_cell,
            "a two-cell fault primitive needs distinct aggressor and victim");
  } else {
    require(a_cell == v_cell,
            "a single-cell fault primitive has aggressor == victim");
  }
}

std::string BoundFp::to_string() const {
  std::ostringstream out;
  out << fp.name();
  if (fp.is_two_cell()) {
    out << " a=" << a_cell << " v=" << v_cell;
  } else {
    out << " cell=" << v_cell;
  }
  return out.str();
}

FaultyMemory::FaultyMemory(std::size_t num_cells, std::vector<BoundFp> faults,
                           std::vector<BoundDecoder> decoders)
    : state_(num_cells),
      faults_(std::move(faults)),
      decoders_(std::move(decoders)) {
  for (const BoundFp& bound : faults_) {
    require(bound.v_cell < num_cells && bound.a_cell < num_cells,
            "bound fault addresses exceed the memory size");
  }
  require(decoders_.size() <= 1,
          "at most one decoder fault per faulty machine");
  require(decoders_.empty() || faults_.empty(),
          "decoder faults do not combine with fault primitives");
  for (const BoundDecoder& bound : decoders_) {
    require(bound.a_cell < num_cells && bound.v_cell < num_cells,
            "bound decoder fault addresses exceed the memory size");
  }
  armed_.assign(faults_.size(), true);
  fire_counts_.assign(faults_.size(), 0);
}

void FaultyMemory::power_on(const MemoryState& initial) {
  require(initial.size() == state_.size(),
          "power_on: initial state size mismatch");
  state_ = initial;
  armed_.assign(faults_.size(), true);
  fire_counts_.assign(faults_.size(), 0);
  total_fires_ = 0;
  // Let state faults settle once on the power-on content.
  std::uint32_t fired = 0;
  settle_state_faults(fired);
  rearm_state_faults();
}

void FaultyMemory::power_on_uniform(Bit value) {
  power_on(MemoryState(state_.size(), value));
}

void FaultyMemory::write(std::size_t address, Bit value) {
  if (!decoders_.empty() && address == decoders_[0].a_cell) {
    // The corrupted address: the write selects cells per the decoder class
    // (no FPs are bound alongside a decoder fault, so the plain state
    // mutation is the entire effect).
    const BoundDecoder& dec = decoders_[0];
    switch (dec.fault.cls) {
      case DecoderFaultClass::NoAccess:
        break;  // no cell selected — the write is dropped
      case DecoderFaultClass::WrongCell:
      case DecoderFaultClass::MultipleAddresses:
        state_.set(dec.v_cell, value);  // redirected to the partner cell
        break;
      case DecoderFaultClass::MultipleCells:
        state_.set(dec.a_cell, value);
        state_.set(dec.v_cell, value);
        break;
    }
    return;
  }
  apply(OpTarget::Write, address, value);
}

Bit FaultyMemory::read(std::size_t address) {
  if (!decoders_.empty() && address == decoders_[0].a_cell) {
    const BoundDecoder& dec = decoders_[0];
    switch (dec.fault.cls) {
      case DecoderFaultClass::NoAccess:
        // Floating data line: the read-back couples to the broken address
        // line's driver (address-dependent — see fp/decoder_fault.hpp).
        return dec.no_access_read_back();
      case DecoderFaultClass::WrongCell:
        return state_.get(dec.v_cell);
      case DecoderFaultClass::MultipleCells:
        // Two cells fight on the data line: wired-OR or wired-AND.
        if (dec.fault.wired == Bit::One) {
          return (state_.get(dec.a_cell) == Bit::One ||
                  state_.get(dec.v_cell) == Bit::One)
                     ? Bit::One
                     : Bit::Zero;
        }
        return (state_.get(dec.a_cell) == Bit::One &&
                state_.get(dec.v_cell) == Bit::One)
                   ? Bit::One
                   : Bit::Zero;
      case DecoderFaultClass::MultipleAddresses:
        // Only the write path is corrupted: the read returns the (stale,
        // never-written) own cell.
        return state_.get(dec.a_cell);
    }
  }
  return apply(OpTarget::Read, address, Bit::Zero);
}

void FaultyMemory::wait(std::size_t address) {
  // A wait at the corrupted address is inert: retention decay is a
  // cell-level FP effect and decoder instances carry no FPs.
  if (!decoders_.empty() && address == decoders_[0].a_cell) return;
  apply(OpTarget::Wait, address, Bit::Zero);
}

std::size_t FaultyMemory::fire_count(std::size_t fault_index) const {
  require(fault_index < fire_counts_.size(), "fire_count: bad fault index");
  return fire_counts_[fault_index];
}

PackedBits FaultyMemory::packed_state() const { return state_.packed_bits(); }

void FaultyMemory::set_packed_state(const PackedBits& bits) {
  state_.set_packed_bits(bits);
}

std::uint32_t FaultyMemory::packed_armed() const {
  require(faults_.size() <= 32, "packed_armed: too many bound faults");
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (armed_[i]) bits |= std::uint32_t{1} << i;
  }
  return bits;
}

void FaultyMemory::set_packed_armed(std::uint32_t bits) {
  require(faults_.size() <= 32, "set_packed_armed: too many bound faults");
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    armed_[i] = ((bits >> i) & 1u) != 0;
  }
}

bool FaultyMemory::op_matches(const BoundFp& bound, OpTarget target,
                              std::size_t address, Bit written) const {
  const FaultPrimitive& fp = bound.fp;
  if (fp.is_state_fault()) return false;  // handled by settle_state_faults

  const bool on_aggressor = fp.op_on_aggressor();
  const std::size_t sense_cell = on_aggressor ? bound.a_cell : bound.v_cell;
  if (address != sense_cell) return false;

  switch (fp.sense_op()) {
    case SenseOp::W0:
      if (target != OpTarget::Write || written != Bit::Zero) return false;
      break;
    case SenseOp::W1:
      if (target != OpTarget::Write || written != Bit::One) return false;
      break;
    case SenseOp::Rd:
      if (target != OpTarget::Read) return false;
      break;
    case SenseOp::Wt:
      if (target != OpTarget::Wait) return false;
      break;
    case SenseOp::None:
      return false;
  }

  if (state_.get(bound.v_cell) != fp.v_state()) return false;
  if (fp.is_two_cell() && state_.get(bound.a_cell) != fp.a_state()) return false;
  return true;
}

bool FaultyMemory::state_condition_holds(const BoundFp& bound) const {
  const FaultPrimitive& fp = bound.fp;
  if (state_.get(bound.v_cell) != fp.v_state()) return false;
  if (fp.is_two_cell() && state_.get(bound.a_cell) != fp.a_state()) return false;
  return true;
}

void FaultyMemory::settle_state_faults(std::uint32_t& fired_this_op) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      const BoundFp& bound = faults_[i];
      if (!bound.fp.is_state_fault()) continue;
      if (((fired_this_op >> i) & 1u) != 0 || !armed_[i]) continue;
      if (!state_condition_holds(bound)) continue;
      state_.set(bound.v_cell, bound.fp.fault_value());
      armed_[i] = false;
      fired_this_op |= std::uint32_t{1} << i;
      ++fire_counts_[i];
      ++total_fires_;
      changed = true;
    }
  }
}

void FaultyMemory::rearm_state_faults() {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!faults_[i].fp.is_state_fault()) continue;
    if (!armed_[i] && !state_condition_holds(faults_[i])) armed_[i] = true;
  }
}

Bit FaultyMemory::apply(OpTarget target, std::size_t address, Bit written) {
  assert(address < state_.size() && "operation address out of range");
  // Evaluate sensitizations against the pre-operation state (state_ is
  // still unmodified here), then apply the default effect and overrides.
  std::uint32_t matched = 0;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (op_matches(faults_[i], target, address, written)) {
      matched |= std::uint32_t{1} << i;
    }
  }

  Bit out = (target == OpTarget::Read) ? state_.get(address) : Bit::Zero;

  // Default operation effect.
  if (target == OpTarget::Write) state_.set(address, written);

  std::uint32_t fired = 0;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (((matched >> i) & 1u) == 0) continue;
    const BoundFp& bound = faults_[i];
    state_.set(bound.v_cell, bound.fp.fault_value());
    if (target == OpTarget::Read && bound.fp.op_on_victim() &&
        bound.v_cell == address) {
      out = to_bit(bound.fp.read_result());
    }
    fired |= std::uint32_t{1} << i;
    ++fire_counts_[i];
    ++total_fires_;
  }

  settle_state_faults(fired);
  rearm_state_faults();
  return out;
}

}  // namespace mtg
