// File loading and kind detection for the catalog text formats.
//
// One stop for CLI front ends: read a file, detect whether it is a fault
// list ('faultlist v1') or a march suite ('suite v1') from its first
// significant line, and parse it with path-prefixed line:column diagnostics
// ("examples/catalogs/custom.faults:12:9: ...").
#pragma once

#include <string>

#include "format/fault_list_text.hpp"
#include "format/suite_text.hpp"

namespace mtg {

/// Reads a whole file into memory; throws mtg::Error naming the path on any
/// I/O failure (missing file, unreadable directory, read error).
std::string read_text_file(const std::string& path);

enum class CatalogKind {
  FaultListFile,  ///< starts with 'faultlist v1'
  SuiteFile,      ///< starts with 'suite v1'
};

/// Detects the catalog kind from the first significant line.  Throws
/// mtg::ParseError when the document matches neither header.
CatalogKind detect_catalog_kind(std::string_view text,
                                const std::string& source = "<string>");

/// read_text_file + parse_fault_list_text with the path as the source name.
FaultList load_fault_list_file(const std::string& path);

/// read_text_file + parse_march_suite_text with the path as the source name.
MarchSuite load_march_suite_file(const std::string& path);

/// Parses `path` as whichever catalog kind its header announces; returns a
/// one-line human-readable summary ("fault list: 12 faults (...)").  Throws
/// on I/O or parse errors — the CLI 'check' verb and the CI catalog-rot
/// guard are built on this.
std::string check_catalog_file(const std::string& path);

}  // namespace mtg
