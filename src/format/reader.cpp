#include "format/reader.hpp"

#include <cctype>

namespace mtg {
namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

LineReader::LineReader(std::string_view text, std::string source)
    : text_(text), source_(std::move(source)) {}

bool LineReader::next() {
  while (cursor_ <= text_.size()) {
    if (cursor_ == text_.size()) {
      // A final line without a trailing newline was handled on the previous
      // iteration; nothing left.
      cursor_ = text_.size() + 1;
      return false;
    }
    std::size_t end = text_.find('\n', cursor_);
    if (end == std::string_view::npos) end = text_.size();
    std::string_view raw = text_.substr(cursor_, end - cursor_);
    ++line_number_;
    cursor_ = end + (end < text_.size() ? 1 : 0);
    const bool last_line_without_newline = end == text_.size();

    // Trim (CRLF input leaves a trailing '\r').
    std::size_t begin = 0;
    std::size_t stop = raw.size();
    while (begin < stop && is_space(raw[begin])) ++begin;
    while (stop > begin && is_space(raw[stop - 1])) --stop;
    if (begin == stop || raw[begin] == '#') {
      if (last_line_without_newline) {
        cursor_ = text_.size() + 1;
        return false;
      }
      continue;  // blank or full-line comment
    }
    line_ = raw.substr(begin, stop - begin);
    indent_ = begin + 1;
    if (last_line_without_newline) cursor_ = text_.size() + 1;
    return true;
  }
  return false;
}

void LineReader::fail(std::size_t column, const std::string& detail) const {
  const TextPosition position{line_number_ == 0 ? 1 : line_number_,
                              indent_ + (column == 0 ? 0 : column - 1)};
  throw ParseError(source_ + ":" + std::to_string(position.line) + ":" +
                       std::to_string(position.column) + ": " + detail +
                       "\n  | " + std::string(line_),
                   detail, position, 0);
}

void LineReader::fail_at_end(const std::string& detail) const {
  const TextPosition position{line_number_ + 1, 1};
  throw ParseError(source_ + ":" + std::to_string(position.line) + ":1: " +
                       detail,
                   detail, position, 0);
}

}  // namespace mtg
