#include "sim/coverage.hpp"

#include <iomanip>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/cancel.hpp"
#include "common/parallel.hpp"
#include "sim/packed_engine.hpp"

namespace mtg {

std::size_t CoverageReport::faults_covered() const {
  std::size_t covered = 0;
  for (const CoverageEntry& e : entries) covered += e.covered ? 1 : 0;
  return covered;
}

std::size_t CoverageReport::instances_total() const {
  std::size_t total = 0;
  for (const CoverageEntry& e : entries) total += e.instances;
  return total;
}

std::size_t CoverageReport::instances_detected() const {
  std::size_t detected = 0;
  for (const CoverageEntry& e : entries) detected += e.detected;
  return detected;
}

double CoverageReport::fault_coverage_percent() const {
  // An empty fault list covers nothing: report 0, not the vacuous 100 the
  // plain ratio convention used to produce (summary() carries the flag).
  if (entries.empty()) return 0.0;
  return 100.0 * static_cast<double>(faults_covered()) /
         static_cast<double>(faults_total());
}

double CoverageReport::instance_coverage_percent() const {
  const std::size_t total = instances_total();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(instances_detected()) /
         static_cast<double>(total);
}

std::vector<std::string> CoverageReport::missed_faults() const {
  std::vector<std::string> missed;
  for (const CoverageEntry& e : entries) {
    if (!e.covered) missed.push_back(e.fault);
  }
  return missed;
}

std::string CoverageReport::summary() const {
  std::ostringstream out;
  if (empty()) {
    out << test_name << " (" << test_complexity << "n) vs " << list_name
        << ": empty fault list — nothing to cover (coverage reported as 0%)";
    return out.str();
  }
  out << test_name << " (" << test_complexity << "n) vs " << list_name << ": "
      << faults_covered() << "/" << faults_total() << " faults covered ("
      << std::fixed << std::setprecision(2) << fault_coverage_percent()
      << "%), " << instances_detected() << "/" << instances_total()
      << " instances (" << std::setprecision(2) << instance_coverage_percent()
      << "%)";
  const auto missed = missed_faults();
  if (!missed.empty()) {
    out << "\n  missed:";
    const std::size_t shown = std::min<std::size_t>(missed.size(), 20);
    for (std::size_t i = 0; i < shown; ++i) out << "\n    " << missed[i];
    if (missed.size() > shown) {
      out << "\n    ... and " << missed.size() - shown << " more";
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const CoverageReport& report) {
  return os << report.summary();
}

CoverageReport evaluate_coverage(const FaultSimulator& simulator,
                                 const MarchTest& test, const FaultList& list,
                                 std::size_t max_instances_per_fault,
                                 const CancelToken* cancel,
                                 const CoverageContext* context) {
  FaultSimulator::validate(test);
  if (cancel != nullptr) cancel->check();
  CoverageReport report;
  report.test_name = test.name().empty() ? test.to_string() : test.name();
  report.list_name = list.name;
  report.test_complexity = test.complexity();

  const std::size_t faults = fault_count(list);
  report.entries.resize(faults);
  for (std::size_t i = 0; i < faults; ++i) {
    report.entries[i].fault_index = i;
    report.entries[i].fault = fault_name(list, i);
    report.entries[i].covered = true;
  }

  // Borrow the context's instantiation when supplied (the service shares one
  // immutable vector across every job naming the same (list, n, cap)).
  std::vector<FaultInstance> owned_instances;
  const std::vector<FaultInstance>* instances_ptr =
      context != nullptr ? context->instances : nullptr;
  if (instances_ptr == nullptr) {
    owned_instances = instantiate_all(
        list, simulator.options().memory_size, max_instances_per_fault);
    instances_ptr = &owned_instances;
  }
  const std::vector<FaultInstance>& instances = *instances_ptr;
  std::vector<std::uint8_t> detected(instances.size(), 0);

  if (simulator.options().use_packed_engine) {
    // Packed fast path: compile the test once (shared good-machine trace and
    // ⇕ numbering), then spread the instances over a bounded thread pool.
    // Per-instance state is stack-only (PackedFaultSim + lane blocks), so
    // workers share nothing but the compiled test and the verdict array.
    std::optional<CompiledTest> owned_compiled;
    const CompiledTest* compiled =
        context != nullptr ? context->compiled : nullptr;
    if (compiled == nullptr) {
      owned_compiled.emplace(compile_march_test(test));
      compiled = &*owned_compiled;
    }
    const auto evaluate = [&](std::size_t, std::size_t begin,
                              std::size_t end) {
      // The per-chunk poll is the cooperative cancellation point: a tripped
      // token stops every worker within one chunk (the throw lands in the
      // pool's first_error and is rethrown on the calling thread).
      if (cancel != nullptr) cancel->check();
      for (std::size_t i = begin; i < end; ++i) {
        detected[i] = simulator.detects_compiled(test, *compiled,
                                                 instances[i]);
      }
    };
    const std::size_t chunk = 16;
    const std::size_t threads = ThreadPool::resolve_thread_count(
        simulator.options().coverage_threads);
    // The caller participates, so the pool only needs enough workers to
    // cover the remaining chunks; tiny lists skip pool construction (and
    // its thread create/join cost) entirely.
    const std::size_t workers = std::min(
        threads - 1, instances.size() / chunk);
    if (threads <= 1 || workers == 0) {
      if (cancel == nullptr) {
        evaluate(0, 0, instances.size());
      } else {
        // Sequential path: chunk manually so the poll frequency matches the
        // pooled path's cancellation latency.
        for (std::size_t begin = 0; begin < instances.size();
             begin += chunk) {
          evaluate(0, begin, std::min(instances.size(), begin + chunk));
        }
      }
    } else {
      ThreadPool pool(workers);
      pool.parallel_for(instances.size(), chunk, evaluate);
    }
  } else {
    // Scalar reference path (sequential — the benchmarks' seed baseline).
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (cancel != nullptr && (i % 16) == 0) cancel->check();
      detected[i] = simulator.detects_scalar(test, instances[i]);
    }
  }

  // Deterministic aggregation in instance order, regardless of the thread
  // schedule: counts and the first escaping instance per fault match the
  // sequential scalar path bit for bit.
  for (std::size_t i = 0; i < instances.size(); ++i) {
    CoverageEntry& entry = report.entries[instances[i].fault_index];
    ++entry.instances;
    if (detected[i] != 0) {
      ++entry.detected;
    } else {
      entry.covered = false;
      if (entry.escape_description.empty()) {
        entry.escape_description = instances[i].description;
      }
    }
  }
  // Faults with zero instances (memory too small) count as uncovered.
  for (CoverageEntry& entry : report.entries) {
    if (entry.instances == 0) {
      entry.covered = false;
      entry.escape_description = "no instances fit the simulated memory";
    }
  }
  return report;
}

}  // namespace mtg
