#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"

namespace mtg {
namespace {

TEST(Trace, FaultFreeRunHasNoMismatchOrFirings) {
  FaultInstance none;
  const Trace trace = trace_run(march_c_minus(), none, 4, Bit::Zero);
  EXPECT_FALSE(trace.detected);
  EXPECT_EQ(trace.total_fires, 0u);
  EXPECT_EQ(trace.steps.size(), 10u * 4u);  // 10n test on 4 cells
  for (const TraceStep& step : trace.steps) {
    EXPECT_FALSE(step.mismatch);
    EXPECT_FALSE(step.fired);
    EXPECT_EQ(step.good_state, step.faulty_state);
  }
}

TEST(Trace, RecordsDetectionPoint) {
  FaultInstance inst;
  inst.fps.push_back(BoundFp::at(FaultPrimitive::sf(Bit::One), 2));
  inst.description = "SF1 at cell 2";
  const Trace trace = trace_run(march_x(), inst, 4, Bit::Zero);
  EXPECT_TRUE(trace.detected);
  EXPECT_GT(trace.total_fires, 0u);
  const TraceStep& hit = trace.steps[trace.first_mismatch];
  EXPECT_TRUE(hit.mismatch);
  EXPECT_EQ(hit.address, 2u);
  EXPECT_TRUE(is_read(hit.op));
}

TEST(Trace, ShowsTheFigure1MaskingStepByStep) {
  // Linked disturb CF: FP1 fires at the aggressor's w1, FP2 fires later and
  // restores the victim; a test ending before reading the victim in between
  // never sees a mismatch even though FPs fired twice.
  FaultInstance inst;
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), 0, 2));
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One), 0, 2));
  inst.description = "linked CF (Eq. 12)";
  const MarchTest blind = parse_march_test("{c(w0); ^(w1); ^(w0); c(r0)}");
  const Trace trace = trace_run(blind, inst, 3, Bit::Zero, 0);
  EXPECT_FALSE(trace.detected);
  EXPECT_EQ(trace.total_fires, 2u);  // sensitized, then masked
  std::size_t fired_steps = 0;
  for (const TraceStep& step : trace.steps) fired_steps += step.fired ? 1 : 0;
  EXPECT_EQ(fired_steps, 2u);
}

TEST(Trace, AnyOrderMaskControlsDirection) {
  FaultInstance none;
  const MarchTest test = parse_march_test("{c(w0); c(r0)}");
  const Trace up = trace_run(test, none, 3, Bit::Zero, /*mask=*/0b00);
  const Trace down = trace_run(test, none, 3, Bit::Zero, /*mask=*/0b11);
  EXPECT_EQ(up.steps.front().address, 0u);
  EXPECT_EQ(down.steps.front().address, 2u);
}

TEST(Trace, RenderingContainsKeyEvents) {
  FaultInstance inst;
  inst.fps.push_back(BoundFp::at(FaultPrimitive::rdf(Bit::Zero), 1));
  inst.description = "RDF0 at cell 1";
  const Trace trace = trace_run(mats_plus(), inst, 3, Bit::Zero);
  const std::string full = trace.to_string();
  EXPECT_NE(full.find("MISMATCH"), std::string::npos);
  EXPECT_NE(full.find("FP fired"), std::string::npos);
  const std::string brief = trace.to_string(/*only_interesting=*/true);
  EXPECT_LT(brief.size(), full.size());
  EXPECT_NE(brief.find("MISMATCH"), std::string::npos);
}

TEST(Trace, ValidatesAddresses) {
  FaultInstance inst;
  inst.fps.push_back(BoundFp::at(FaultPrimitive::sf(Bit::One), 9));
  EXPECT_THROW(trace_run(mats_plus(), inst, 4, Bit::Zero), Error);
}

}  // namespace
}  // namespace mtg
