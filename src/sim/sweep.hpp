// Memory-size sweep workload: one march test × one fault list evaluated
// across many simulated memory sizes (n ≫ 64 included).
//
// The packed engine's cost per fault instance is independent of n (cell
// collapsing keeps only the ≤ 3 involved cells), so the sweep's cost is
// governed by the number of instantiated layouts, not by the memory size —
// `max_instances_per_fault` bounds that deterministically (instantiate_all).
// Sweep points are independent, so they are spread over the bounded thread
// pool (common/parallel.hpp); each point evaluates sequentially on its
// worker, and results land in size-list order, so the sweep output is
// byte-identical for every thread count.
//
// Whether the curve moves with n depends on the fault list.  Pure cell-array
// (FP) faults are order-only — march elements treat cells uniformly, so
// their detection depends only on the relative order of the involved cells
// and the sweep is provably flat over n.  Address-decoder faults
// (fp/decoder_fault.hpp, decoder_fault_list()) are what bend it: a fault on
// address line `bit` exists only in memories with 2^bit < n, so the
// instantiable — and coverable — fraction of the list grows with the memory
// size, and the per-point instance counts track the address space.  See
// tests/sim/test_decoder.cpp (SweepCurveVariesWithN) and
// bench_decoder_sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/coverage.hpp"

namespace mtg {

class CancelToken;  // common/cancel.hpp
class SweepStore;

struct SweepOptions {
  /// SimulatorOptions fields shared by every sweep point.
  bool both_power_on_states = true;
  std::size_t max_any_order_elements = 10;
  bool use_packed_engine = true;
  /// Per-fault layout bound per sweep point (0 = full enumeration — beware:
  /// two-cell faults enumerate O(n²) layouts).
  std::size_t max_instances_per_fault = 4096;
  /// Worker threads across sweep points; 0 picks the hardware concurrency.
  std::size_t threads = 0;
  /// Optional persistent result cache (store/sweep_store.hpp, opened by the
  /// caller).  Every completed point is persisted as it lands; points whose
  /// verified record already exists load instead of recomputing — resumable
  /// partial grids.  The reports are byte-identical with or without a
  /// (possibly failing) store: a damaged or unavailable store only costs
  /// recomputation, never correctness.
  SweepStore* store = nullptr;
  /// Optional cooperative cancellation (common/cancel.hpp).  Once the token
  /// trips, points not yet completed are skipped (marked cancelled) and the
  /// one mid-evaluation stops within a few instance simulations; completed
  /// points are returned intact — with a store, an interrupted sweep has
  /// already persisted them and a re-run resumes from there.
  const CancelToken* cancel = nullptr;
};

/// Coverage of one sweep point.
struct SweepPoint {
  std::size_t memory_size = 0;
  CoverageReport report;
  /// True when the report was loaded from SweepOptions::store instead of
  /// evaluated — the per-point "engine call" indicator the warm-resume
  /// tests and benchmarks count.
  bool from_store = false;
  /// True when SweepOptions::cancel tripped before this point completed;
  /// `report` is then empty (never partial).
  bool cancelled = false;
};

/// Number of points actually evaluated (not loaded from the store): 0 on a
/// fully warm resume.
std::size_t sweep_points_evaluated(const std::vector<SweepPoint>& points);

/// Evaluates `test` against `list` at every memory size of `sizes`
/// (each ≥ 3, the simulator's minimum; duplicates allowed, order kept).
/// Deterministic: the result is identical for every `threads` value.
std::vector<SweepPoint> sweep_coverage(const MarchTest& test,
                                       const FaultList& list,
                                       const std::vector<std::size_t>& sizes,
                                       const SweepOptions& options = {});

/// Compact per-size table (one line per sweep point).
std::string sweep_summary(const std::vector<SweepPoint>& points);

}  // namespace mtg
