#include "analysis/static_analyzer.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "fp/semantics.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

constexpr std::size_t kMaxSlots = 4;
constexpr std::size_t kMaxFps = 16;

/// A decoder fault rebased onto involved-cell ranks.  `readback` bakes in
/// the address-dependent AFna read-back (bit `bit` of the corrupted
/// address), the only place absolute addresses enter the semantics.
struct SlotDecoder {
  DecoderFaultClass cls = DecoderFaultClass::NoAccess;
  Bit wired = Bit::Zero;
  Bit readback = Bit::Zero;
  std::size_t a_slot = 0;
  std::size_t v_slot = 0;
};

/// The involved-cell micro-machine: FPs (or one decoder fault) bound to
/// cell ranks 0..slots-1 in address order.
struct SlotMachine {
  std::size_t slots = 0;
  std::vector<BoundFp> fps;  ///< a_cell / v_cell hold slot ranks
  std::optional<SlotDecoder> decoder;
};

/// One undetected machine configuration.  `faulty`/`good`/`armed` are the
/// machine state proper (the dedup key); the rest is scenario metadata and
/// witness bookkeeping carried along from the first path that reached the
/// state.
struct Config {
  std::array<Bit, kMaxSlots> faulty{};
  std::array<Bit, kMaxSlots> good{};
  std::uint32_t armed = 0;

  Bit power_on = Bit::Zero;
  std::uint64_t any_mask = 0;

  bool has_sense = false;
  bool sense_at_power_on = false;
  bool sense_is_decoder = false;
  std::size_t sense_fp = 0;
  std::size_t sense_element = 0;
  std::size_t sense_op = 0;
};

std::uint32_t config_key(const Config& c) {
  std::uint32_t key = c.armed;
  for (std::size_t s = 0; s < kMaxSlots; ++s) {
    key = (key << 2) | (static_cast<std::uint32_t>(to_int(c.faulty[s])) << 1 |
                        static_cast<std::uint32_t>(to_int(c.good[s])));
  }
  return key;
}

/// The failing read that emptied a configuration out of the live set.
struct Detection {
  std::size_t element = 0;
  std::size_t op = 0;
  std::size_t slot = 0;
  Bit expected = Bit::Zero;
  Bit observed = Bit::Zero;
  Config config;  ///< state at detection time (sense + scenario metadata)
};

enum class OpTarget { Write, Read, Wait };

/// Exact mirror of FaultyMemory (fp/semantics.cpp) over slot ranks.  Every
/// branch here corresponds line for line to the reference semantics; the
/// three-way differential harness keeps the two from drifting apart.
class Interp {
 public:
  explicit Interp(const SlotMachine& machine) : m_(machine) {}

  void power_on(Config& c, Bit value) const {
    for (std::size_t s = 0; s < m_.slots; ++s) {
      c.faulty[s] = value;
      c.good[s] = value;
    }
    c.armed = m_.fps.empty()
                  ? 0
                  : (m_.fps.size() >= 32
                         ? ~std::uint32_t{0}
                         : (std::uint32_t{1} << m_.fps.size()) - 1);
    c.power_on = value;
    std::uint32_t fired = 0;
    settle(c, fired, 0, 0, /*at_power_on=*/true);
    rearm(c);
  }

  void write(Config& c, std::size_t slot, Bit value, std::size_t element,
             std::size_t op) const {
    if (m_.decoder.has_value() && slot == m_.decoder->a_slot) {
      const SlotDecoder& dec = *m_.decoder;
      record_decoder_sense(c, element, op);
      switch (dec.cls) {
        case DecoderFaultClass::NoAccess:
          break;  // no cell selected — the write is dropped
        case DecoderFaultClass::WrongCell:
        case DecoderFaultClass::MultipleAddresses:
          c.faulty[dec.v_slot] = value;
          break;
        case DecoderFaultClass::MultipleCells:
          c.faulty[dec.a_slot] = value;
          c.faulty[dec.v_slot] = value;
          break;
      }
      return;
    }
    apply(c, OpTarget::Write, slot, value, element, op);
  }

  Bit read(Config& c, std::size_t slot, std::size_t element,
           std::size_t op) const {
    if (m_.decoder.has_value() && slot == m_.decoder->a_slot) {
      const SlotDecoder& dec = *m_.decoder;
      switch (dec.cls) {
        case DecoderFaultClass::NoAccess:
          return dec.readback;
        case DecoderFaultClass::WrongCell:
          return c.faulty[dec.v_slot];
        case DecoderFaultClass::MultipleCells:
          if (dec.wired == Bit::One) {
            return (c.faulty[dec.a_slot] == Bit::One ||
                    c.faulty[dec.v_slot] == Bit::One)
                       ? Bit::One
                       : Bit::Zero;
          }
          return (c.faulty[dec.a_slot] == Bit::One &&
                  c.faulty[dec.v_slot] == Bit::One)
                     ? Bit::One
                     : Bit::Zero;
        case DecoderFaultClass::MultipleAddresses:
          return c.faulty[dec.a_slot];
      }
    }
    return apply(c, OpTarget::Read, slot, Bit::Zero, element, op);
  }

  void wait(Config& c, std::size_t slot, std::size_t element,
            std::size_t op) const {
    if (m_.decoder.has_value() && slot == m_.decoder->a_slot) return;
    apply(c, OpTarget::Wait, slot, Bit::Zero, element, op);
  }

 private:
  bool op_matches(const Config& c, const BoundFp& bound, OpTarget target,
                  std::size_t slot, Bit written) const {
    const FaultPrimitive& fp = bound.fp;
    if (fp.is_state_fault()) return false;  // handled by settle()

    const bool on_aggressor = fp.op_on_aggressor();
    const std::size_t sense_slot = on_aggressor ? bound.a_cell : bound.v_cell;
    if (slot != sense_slot) return false;

    switch (fp.sense_op()) {
      case SenseOp::W0:
        if (target != OpTarget::Write || written != Bit::Zero) return false;
        break;
      case SenseOp::W1:
        if (target != OpTarget::Write || written != Bit::One) return false;
        break;
      case SenseOp::Rd:
        if (target != OpTarget::Read) return false;
        break;
      case SenseOp::Wt:
        if (target != OpTarget::Wait) return false;
        break;
      case SenseOp::None:
        return false;
    }

    if (c.faulty[bound.v_cell] != fp.v_state()) return false;
    if (fp.is_two_cell() && c.faulty[bound.a_cell] != fp.a_state()) {
      return false;
    }
    return true;
  }

  bool state_condition_holds(const Config& c, const BoundFp& bound) const {
    const FaultPrimitive& fp = bound.fp;
    if (c.faulty[bound.v_cell] != fp.v_state()) return false;
    if (fp.is_two_cell() && c.faulty[bound.a_cell] != fp.a_state()) {
      return false;
    }
    return true;
  }

  void record_sense(Config& c, std::size_t fp_index, std::size_t element,
                    std::size_t op, bool at_power_on) const {
    c.has_sense = true;
    c.sense_at_power_on = at_power_on;
    c.sense_is_decoder = false;
    c.sense_fp = fp_index;
    c.sense_element = element;
    c.sense_op = op;
  }

  void record_decoder_sense(Config& c, std::size_t element,
                            std::size_t op) const {
    c.has_sense = true;
    c.sense_at_power_on = false;
    c.sense_is_decoder = true;
    c.sense_element = element;
    c.sense_op = op;
  }

  void settle(Config& c, std::uint32_t& fired_this_op, std::size_t element,
              std::size_t op, bool at_power_on) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < m_.fps.size(); ++i) {
        const BoundFp& bound = m_.fps[i];
        if (!bound.fp.is_state_fault()) continue;
        if (((fired_this_op >> i) & 1u) != 0 || ((c.armed >> i) & 1u) == 0) {
          continue;
        }
        if (!state_condition_holds(c, bound)) continue;
        c.faulty[bound.v_cell] = bound.fp.fault_value();
        c.armed &= ~(std::uint32_t{1} << i);
        fired_this_op |= std::uint32_t{1} << i;
        record_sense(c, i, element, op, at_power_on);
        changed = true;
      }
    }
  }

  void rearm(Config& c) const {
    for (std::size_t i = 0; i < m_.fps.size(); ++i) {
      if (!m_.fps[i].fp.is_state_fault()) continue;
      if (((c.armed >> i) & 1u) == 0 && !state_condition_holds(c, m_.fps[i])) {
        c.armed |= std::uint32_t{1} << i;
      }
    }
  }

  Bit apply(Config& c, OpTarget target, std::size_t slot, Bit written,
            std::size_t element, std::size_t op) const {
    // Sensitizations evaluate against the pre-operation state.
    std::uint32_t matched = 0;
    for (std::size_t i = 0; i < m_.fps.size(); ++i) {
      if (op_matches(c, m_.fps[i], target, slot, written)) {
        matched |= std::uint32_t{1} << i;
      }
    }

    Bit out = (target == OpTarget::Read) ? c.faulty[slot] : Bit::Zero;

    if (target == OpTarget::Write) c.faulty[slot] = written;

    std::uint32_t fired = 0;
    for (std::size_t i = 0; i < m_.fps.size(); ++i) {
      if (((matched >> i) & 1u) == 0) continue;
      const BoundFp& bound = m_.fps[i];
      c.faulty[bound.v_cell] = bound.fp.fault_value();
      if (target == OpTarget::Read && bound.fp.op_on_victim() &&
          bound.v_cell == slot) {
        out = to_bit(bound.fp.read_result());
      }
      fired |= std::uint32_t{1} << i;
      record_sense(c, i, element, op, /*at_power_on=*/false);
    }

    settle(c, fired, element, op, /*at_power_on=*/false);
    rearm(c);
    return out;
  }

  const SlotMachine& m_;
};

StaticResult unknown_result(std::string reason) {
  StaticResult result;
  result.verdict = StaticVerdict::Unknown;
  result.reason = std::move(reason);
  return result;
}

StaticResult not_detected_result(std::string reason) {
  StaticResult result;
  result.verdict = StaticVerdict::NotDetected;
  result.reason = std::move(reason);
  return result;
}

std::string mask_string(std::uint64_t mask, std::size_t any_count) {
  std::string bits;
  for (std::size_t i = 0; i < any_count; ++i) {
    bits += ((mask >> i) & 1u) != 0 ? "⇓" : "⇑";
  }
  return bits;
}

/// ⇕ resolutions beyond the 64-bit witness mask are walked exactly but not
/// recorded: verdicts stay sound, the replay metadata just truncates.
constexpr std::size_t kAnyMaskBits = 64;

/// The core walk: runs `machine` through `test`, branching on ⇕ elements.
StaticResult analyze_machine(const MarchTest& test, const SlotMachine& machine,
                             const AnalysisOptions& options,
                             const std::string& subject) {
  if (machine.slots == 0 || machine.slots > kMaxSlots) {
    return unknown_result(subject + ": more than " +
                          std::to_string(kMaxSlots) +
                          " involved cells is outside the abstract domain");
  }
  if (machine.fps.size() > kMaxFps) {
    return unknown_result(subject + ": too many bound fault primitives");
  }
  if (machine.decoder.has_value() && !machine.fps.empty()) {
    return unknown_result(
        subject + ": decoder faults do not combine with fault primitives");
  }
  for (const BoundFp& bound : machine.fps) {
    if (bound.fp.v_op() == SenseOp::Rd && !is_concrete(bound.fp.read_result())) {
      return unknown_result(subject +
                            ": read-sensitized FP with don't-care read "
                            "result is outside the abstract domain");
    }
    if (bound.a_cell >= machine.slots || bound.v_cell >= machine.slots) {
      return unknown_result(subject + ": FP bound outside the cell ranks");
    }
  }

  const Interp interp(machine);
  std::vector<Config> live;
  live.reserve(2);
  {
    Config c{};
    interp.power_on(c, Bit::Zero);
    live.push_back(c);
  }
  if (options.both_power_on_states) {
    Config c{};
    interp.power_on(c, Bit::One);
    live.push_back(c);
  }

  std::optional<Detection> first_detection;
  const std::size_t total_any = FaultSimulator::any_order_count(test);

  // ⇕ numbering as a function of the element index, shared by the
  // breadth-first walk and the widened depth-first finish (which revisits
  // elements out of lockstep).
  std::vector<std::size_t> any_before(test.elements().size() + 1, 0);
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    any_before[e + 1] =
        any_before[e] +
        (test.elements()[e].order() == AddressOrder::Any ? 1 : 0);
  }

  // Runs one configuration through element `e` under a fixed address order.
  // Returns true when a read detected the deviation (recording the first
  // detection overall), false when the configuration survives the element.
  const auto walk_element = [&](Config& c, std::size_t e,
                                AddressOrder order) -> bool {
    const MarchElement& element = test.elements()[e];
    for (std::size_t step = 0; step < machine.slots; ++step) {
      const std::size_t slot =
          order == AddressOrder::Up ? step : machine.slots - 1 - step;
      for (std::size_t i = 0; i < element.ops().size(); ++i) {
        const Op op = element.ops()[i];
        if (is_write(op)) {
          const Bit value = written_value(op);
          c.good[slot] = value;
          interp.write(c, slot, value, e, i);
        } else if (is_read(op)) {
          const Bit expected = c.good[slot];
          const Bit observed = interp.read(c, slot, e, i);
          if (observed != expected) {
            if (!first_detection.has_value()) {
              first_detection = Detection{e, i, slot, expected, observed, c};
            }
            return true;
          }
        } else {
          interp.wait(c, slot, e, i);
        }
      }
    }
    return false;
  };

  const auto escape_result = [&](const Config& escape) {
    std::ostringstream reason;
    reason << subject << " escapes: power-on " << to_char(escape.power_on);
    if (total_any > 0) {
      reason << ", ⇕ resolved as "
             << mask_string(escape.any_mask,
                            std::min(total_any, kAnyMaskBits));
      if (total_any > kAnyMaskBits) {
        reason << "… (first " << kAnyMaskBits << " of " << total_any << ")";
      }
    }
    reason << " produces no failing read";
    return not_detected_result(reason.str());
  };

  for (std::size_t e = 0; e < test.elements().size() && !live.empty(); ++e) {
    const MarchElement& element = test.elements()[e];
    const bool branching = element.order() == AddressOrder::Any;
    const std::size_t any_index = any_before[e];

    std::vector<Config> next;
    next.reserve(live.size() * (branching ? 2 : 1));
    std::vector<std::uint32_t> seen;
    seen.reserve(next.capacity());

    for (const Config& base : live) {
      for (int branch = 0; branch < (branching ? 2 : 1); ++branch) {
        const AddressOrder order =
            branching ? (branch != 0 ? AddressOrder::Down : AddressOrder::Up)
                      : element.order();
        Config c = base;
        if (branching && branch != 0 && any_index < kAnyMaskBits) {
          c.any_mask |= std::uint64_t{1} << any_index;
        }
        if (!walk_element(c, e, order)) {
          const std::uint32_t key = config_key(c);
          if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
            seen.push_back(key);
            next.push_back(c);
          }
        }
      }
    }

    live.swap(next);
    if (live.size() > options.max_states) {
      // Configuration-key widening: the breadth-first frontier outgrew the
      // budget, so finish every surviving configuration depth-first.  The
      // per-element semantics are identical (walk_element), memory stays
      // bounded by the stack (<= remaining elements x 2), and only the
      // explicit step budget — not reachable for catalog-shaped machines —
      // trades exactness away.
      struct Frame {
        std::size_t element;
        Config config;
      };
      std::vector<Frame> stack;
      stack.reserve(live.size());
      for (auto it = live.rbegin(); it != live.rend(); ++it) {
        stack.push_back(Frame{e + 1, *it});
      }
      live.clear();
      std::size_t steps = 0;
      while (!stack.empty()) {
        Frame frame = std::move(stack.back());
        stack.pop_back();
        if (frame.element == test.elements().size()) {
          return escape_result(frame.config);
        }
        if (++steps > options.widen_step_budget) {
          return unknown_result(
              subject + ": widened walk exceeded " +
              std::to_string(options.widen_step_budget) + " element steps");
        }
        const bool fork =
            test.elements()[frame.element].order() == AddressOrder::Any;
        const std::size_t fork_index = any_before[frame.element];
        // Down pushed first so Up is explored first, matching the
        // breadth-first branch order.
        for (int branch = fork ? 1 : 0; branch >= 0; --branch) {
          const AddressOrder order =
              fork ? (branch != 0 ? AddressOrder::Down : AddressOrder::Up)
                   : test.elements()[frame.element].order();
          Config c = frame.config;
          if (fork && branch != 0 && fork_index < kAnyMaskBits) {
            c.any_mask |= std::uint64_t{1} << fork_index;
          }
          if (!walk_element(c, frame.element, order)) {
            stack.push_back(Frame{frame.element + 1, std::move(c)});
          }
        }
      }
      break;  // every widened configuration was detected: live stays empty
    }
  }

  if (live.empty()) {
    require(first_detection.has_value(),
            "static analyzer: emptied the state set without a detection");
    StaticResult result;
    result.verdict = StaticVerdict::Detected;
    StaticWitness w;
    const Detection& det = *first_detection;
    w.power_on = det.config.power_on;
    w.any_mask = det.config.any_mask;
    w.any_count = total_any;
    w.observe_element = det.element;
    w.observe_op = det.op;
    w.observe_slot = det.slot;
    w.expected = det.expected;
    w.observed = det.observed;
    w.has_sense = det.config.has_sense;
    w.sense_at_power_on = det.config.sense_at_power_on;
    w.sense_element = det.config.sense_element;
    w.sense_op = det.config.sense_op;
    if (det.config.has_sense) {
      w.sense_what = det.config.sense_is_decoder
                         ? "the decoder deviation"
                         : machine.fps[det.config.sense_fp].fp.notation();
    }
    result.witness = std::move(w);
    return result;
  }

  return escape_result(live.front());
}

/// C(n, k) saturating at uint64 max — the uncapped instantiate() count.
std::uint64_t subset_count(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t factor = n - i;
    if (result > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * factor / (i + 1);
  }
  return result;
}

/// Number of values below `m` with address bit `bit` clear.
std::uint64_t count_bit_clear_below(std::uint64_t m, std::size_t bit) {
  const std::uint64_t block = std::uint64_t{1} << bit;
  const std::uint64_t period = block << 1;
  return (m / period) * block + std::min(m % period, block);
}

bool decoder_instantiable(const DecoderFault& fault, std::size_t n) {
  return fault.bit < 63 && (std::size_t{1} << fault.bit) < n;
}

StaticResult no_instances_result(const std::string& subject, std::size_t n) {
  return not_detected_result(subject + ": no instances fit a memory of " +
                             std::to_string(n) + " cells");
}

/// Combines the per-branch verdicts of a fault whose instances fall into
/// several behaviour classes: Detected needs every branch detected; one
/// escaping branch is enough for NotDetected.
StaticResult combine_branches(std::vector<StaticResult> branches) {
  StaticResult combined;
  combined.verdict = StaticVerdict::Detected;
  for (StaticResult& branch : branches) {
    if (branch.verdict == StaticVerdict::NotDetected) return branch;
    if (branch.verdict == StaticVerdict::Unknown) {
      combined.verdict = StaticVerdict::Unknown;
      combined.reason = branch.reason;
      combined.witness.reset();
    } else if (combined.verdict == StaticVerdict::Detected &&
               !combined.witness.has_value()) {
      combined.witness = std::move(branch.witness);
    }
  }
  return combined;
}

}  // namespace

std::string to_string(StaticVerdict verdict) {
  switch (verdict) {
    case StaticVerdict::Detected:
      return "detected";
    case StaticVerdict::NotDetected:
      return "not detected";
    case StaticVerdict::Unknown:
      return "unknown";
  }
  return "?";
}

std::string StaticWitness::to_string() const {
  std::ostringstream out;
  out << "element #" << observe_element << " op #" << observe_op
      << " reads " << to_char(observed) << " where the fault-free machine"
      << " holds " << to_char(expected) << " (cell rank " << observe_slot
      << "; power-on " << to_char(power_on);
  if (any_count > 0) {
    out << ", ⇕ resolved as "
        << mask_string(any_mask, std::min(any_count, kAnyMaskBits));
    if (any_count > kAnyMaskBits) {
      out << "… (first " << kAnyMaskBits << " of " << any_count << ")";
    }
  }
  out << ")";
  if (has_sense) {
    out << "; sensitized by " << sense_what;
    if (sense_at_power_on) {
      out << " at power-on";
    } else {
      out << " at element #" << sense_element << " op #" << sense_op;
    }
  }
  return out.str();
}

StaticResult analyze_instance(const MarchTest& test,
                              const FaultInstance& instance,
                              const AnalysisOptions& options) {
  if (!instance.decoders.empty() && !instance.fps.empty()) {
    return unknown_result(
        "instance combines fault primitives with a decoder fault");
  }
  if (instance.decoders.size() > 1) {
    return unknown_result("instance carries several decoder faults");
  }

  SlotMachine machine;
  if (!instance.decoders.empty()) {
    const BoundDecoder& dec = instance.decoders[0];
    SlotDecoder slot_dec;
    slot_dec.cls = dec.fault.cls;
    slot_dec.wired = dec.fault.wired;
    slot_dec.readback = dec.no_access_read_back();
    if (dec.two_cell()) {
      machine.slots = 2;
      slot_dec.a_slot = dec.a_cell < dec.v_cell ? 0 : 1;
      slot_dec.v_slot = 1 - slot_dec.a_slot;
    } else {
      machine.slots = 1;
      slot_dec.a_slot = 0;
      slot_dec.v_slot = 0;
    }
    machine.decoder = slot_dec;
    return analyze_machine(test, machine, options, instance.description);
  }

  // Rebase the bound FPs onto involved-cell ranks.
  std::vector<std::size_t> cells;
  for (const BoundFp& bound : instance.fps) {
    cells.push_back(bound.a_cell);
    cells.push_back(bound.v_cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  if (cells.empty() || cells.size() > kMaxSlots) {
    return unknown_result(instance.description + ": " +
                          std::to_string(cells.size()) +
                          " involved cells is outside the abstract domain");
  }
  const auto rank = [&cells](std::size_t cell) {
    return static_cast<std::size_t>(
        std::lower_bound(cells.begin(), cells.end(), cell) - cells.begin());
  };
  machine.slots = cells.size();
  for (const BoundFp& bound : instance.fps) {
    machine.fps.push_back(
        BoundFp(bound.fp, rank(bound.a_cell), rank(bound.v_cell)));
  }
  return analyze_machine(test, machine, options, instance.description);
}

StaticResult analyze_fault(const MarchTest& test, const SimpleFault& fault,
                           std::size_t n, const AnalysisOptions& options) {
  const std::size_t k = static_cast<std::size_t>(fault.num_cells());
  if (n < k) return no_instances_result(fault.name, n);
  // Cell-array faults have one behaviour class: the layout fixes the
  // relative order of the involved cells, and nothing else about the
  // addresses enters the semantics.
  SlotMachine machine;
  machine.slots = k;
  const std::size_t v = fault.v_pos;
  const std::size_t a =
      fault.a_pos >= 0 ? static_cast<std::size_t>(fault.a_pos) : v;
  machine.fps.push_back(BoundFp(fault.fp, a, v));
  return analyze_machine(test, machine, options, fault.name);
}

StaticResult analyze_fault(const MarchTest& test, const LinkedFault& fault,
                           std::size_t n, const AnalysisOptions& options) {
  const std::size_t k = static_cast<std::size_t>(fault.num_cells());
  if (n < k) return no_instances_result(fault.name(), n);
  const LinkedLayout& layout = fault.layout();
  SlotMachine machine;
  machine.slots = k;
  const std::size_t v = layout.v_pos;
  const std::size_t a1 =
      layout.a1_pos >= 0 ? static_cast<std::size_t>(layout.a1_pos) : v;
  const std::size_t a2 =
      layout.a2_pos >= 0 ? static_cast<std::size_t>(layout.a2_pos) : v;
  // Same FP order as instantiate(): fp1 before fp2 — firing order matters
  // when both match one operation.
  machine.fps.push_back(BoundFp(fault.fp1(), a1, v));
  machine.fps.push_back(BoundFp(fault.fp2(), a2, v));
  return analyze_machine(test, machine, options, fault.name());
}

StaticResult analyze_fault(const MarchTest& test, const DecoderFault& fault,
                           std::size_t n, const AnalysisOptions& options) {
  if (!decoder_instantiable(fault, n)) {
    return no_instances_result(fault.name(), n);
  }
  // Two behaviour classes per fault, both feasible whenever 2^bit < n:
  // AFna splits on the read-back bit (a = 0 vs a = 2^bit), the two-cell
  // classes split on which side of the pair holds the corrupted address.
  std::vector<StaticResult> branches;
  for (int branch = 0; branch < 2; ++branch) {
    SlotMachine machine;
    SlotDecoder slot_dec;
    slot_dec.cls = fault.cls;
    slot_dec.wired = fault.wired;
    if (fault.cls == DecoderFaultClass::NoAccess) {
      machine.slots = 1;
      slot_dec.a_slot = 0;
      slot_dec.v_slot = 0;
      slot_dec.readback = branch == 0 ? Bit::Zero : Bit::One;
    } else {
      machine.slots = 2;
      slot_dec.a_slot = static_cast<std::size_t>(branch);
      slot_dec.v_slot = 1 - slot_dec.a_slot;
    }
    machine.decoder = slot_dec;
    branches.push_back(
        analyze_machine(test, machine, options, fault.name()));
  }
  return combine_branches(std::move(branches));
}

std::uint64_t static_instance_count(const SimpleFault& fault, std::size_t n) {
  return subset_count(n, static_cast<std::size_t>(fault.num_cells()));
}

std::uint64_t static_instance_count(const LinkedFault& fault, std::size_t n) {
  return subset_count(n, static_cast<std::size_t>(fault.num_cells()));
}

std::uint64_t static_instance_count(const DecoderFault& fault, std::size_t n) {
  if (!decoder_instantiable(fault, n)) return 0;
  if (fault.cls == DecoderFaultClass::NoAccess) return n;
  // Corrupted addresses a < n whose partner a XOR 2^bit also fits: every a
  // with the bit set (the partner is below a), plus every bit-clear a whose
  // partner a + 2^bit is still below n.
  const std::uint64_t block = std::uint64_t{1} << fault.bit;
  const std::uint64_t with_bit_set = n - count_bit_clear_below(n, fault.bit);
  const std::uint64_t clear_and_fits =
      n > block ? count_bit_clear_below(n - block, fault.bit) : 0;
  return with_bit_set + clear_and_fits;
}

std::string StaticCoverage::summary() const {
  std::ostringstream out;
  out << "static: " << detected << " detected, " << not_detected
      << " not detected, " << unknown << " unknown (of " << entries.size()
      << " faults)";
  return out.str();
}

StaticCoverage analyze_coverage(const MarchTest& test, const FaultList& list,
                                std::size_t n,
                                const AnalysisOptions& options) {
  StaticCoverage coverage;
  coverage.entries.reserve(list.size());
  const auto add = [&coverage](const std::string& name, StaticResult result,
                               std::uint64_t count) {
    StaticCoverageEntry entry;
    entry.fault_index = coverage.entries.size();
    entry.fault_name = name;
    entry.verdict = result.verdict;
    entry.instance_count = count;
    entry.witness = std::move(result.witness);
    entry.reason = std::move(result.reason);
    switch (entry.verdict) {
      case StaticVerdict::Detected:
        ++coverage.detected;
        break;
      case StaticVerdict::NotDetected:
        ++coverage.not_detected;
        break;
      case StaticVerdict::Unknown:
        ++coverage.unknown;
        break;
    }
    coverage.entries.push_back(std::move(entry));
  };
  for (const SimpleFault& fault : list.simple) {
    add(fault.name, analyze_fault(test, fault, n, options),
        static_instance_count(fault, n));
  }
  for (const LinkedFault& fault : list.linked) {
    add(fault.name(), analyze_fault(test, fault, n, options),
        static_instance_count(fault, n));
  }
  for (const DecoderFault& fault : list.decoder) {
    add(fault.name(), analyze_fault(test, fault, n, options),
        static_instance_count(fault, n));
  }
  return coverage;
}

namespace {

/// Exact number of layouts instantiate() keeps for an FP fault under `cap`,
/// or nullopt when the kept count is not analytic: the uncapped count
/// saturated uint64, or bounded_subsets' seeded-random tier (count > 4*cap)
/// whose attempt bound may keep fewer than `cap` layouts.
std::optional<std::uint64_t> exact_fp_kept(std::uint64_t uncapped,
                                           std::size_t cap) {
  if (uncapped == std::numeric_limits<std::uint64_t>::max()) {
    return std::nullopt;
  }
  if (cap == 0 || uncapped <= cap) return uncapped;
  // Mirror of bounded_subsets' tier test: the evenly-spaced tier keeps
  // exactly `cap` distinct layouts.
  if (uncapped <= 4 * static_cast<std::uint64_t>(cap)) return cap;
  return std::nullopt;
}

}  // namespace

std::optional<CoverageReport> static_coverage_report(
    const MarchTest& test, const FaultList& list, std::size_t n,
    std::size_t max_instances_per_fault, const AnalysisOptions& options) {
  FaultSimulator::validate(test);  // same throw as evaluate_coverage
  CoverageReport report;
  report.test_name = test.name().empty() ? test.to_string() : test.name();
  report.list_name = list.name;
  report.test_complexity = test.complexity();
  report.entries.resize(fault_count(list));

  std::size_t index = 0;
  const auto serve = [&report, &index](const std::string& name,
                                       const StaticResult& result,
                                       std::optional<std::uint64_t> kept) {
    CoverageEntry& entry = report.entries[index];
    entry.fault_index = index;
    entry.fault = name;
    ++index;
    if (result.verdict == StaticVerdict::Unknown || !kept.has_value()) {
      return false;
    }
    if (*kept == 0) {
      // evaluate_coverage's zero-instance convention, byte for byte.
      entry.covered = false;
      entry.escape_description = "no instances fit the simulated memory";
      return true;
    }
    if (result.verdict == StaticVerdict::NotDetected) {
      // The detected-instance split (and the first escaping instance's
      // description) is a per-instance property the fault-level verdict
      // does not determine.
      return false;
    }
    if (*kept > std::numeric_limits<std::size_t>::max()) return false;
    entry.instances = static_cast<std::size_t>(*kept);
    entry.detected = entry.instances;
    entry.covered = true;
    return true;
  };

  const std::size_t cap = max_instances_per_fault;
  for (const SimpleFault& fault : list.simple) {
    if (static_cast<std::size_t>(fault.num_cells()) > n) {
      return std::nullopt;  // instantiate() refuses; the job must Fail
    }
    if (!serve(fault.name, analyze_fault(test, fault, n, options),
               exact_fp_kept(static_instance_count(fault, n), cap))) {
      return std::nullopt;
    }
  }
  for (const LinkedFault& fault : list.linked) {
    if (static_cast<std::size_t>(fault.num_cells()) > n) {
      return std::nullopt;
    }
    if (!serve(fault.name(), analyze_fault(test, fault, n, options),
               exact_fp_kept(static_instance_count(fault, n), cap))) {
      return std::nullopt;
    }
  }
  for (const DecoderFault& fault : list.decoder) {
    // Decoder sampling keeps exactly min(count, cap) addresses: always
    // analytic (a fault on a missing address line has zero instances —
    // no throw, unlike the FP layouts).
    const std::uint64_t count = static_instance_count(fault, n);
    const std::uint64_t kept =
        cap == 0 ? count : std::min<std::uint64_t>(count, cap);
    if (!serve(fault.name(), analyze_fault(test, fault, n, options), kept)) {
      return std::nullopt;
    }
  }
  return report;
}

}  // namespace mtg
