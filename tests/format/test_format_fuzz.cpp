// Seeded malformed-input fuzzer over the catalog text formats.
//
// Each case takes a valid seed document (the canonical serialization of a
// built-in fault list, a suite of catalog tests, or a hand-written file
// with comments), applies a few random byte/line mutations, and feeds it to
// the reader.  The invariant: the reader either
//
//   (a) accepts, in which case to_canonical_string(parse(m)) must be a
//       fixpoint (reparse equal, rewrite byte-identical), or
//   (b) rejects with mtg::ParseError carrying a valid line:column position —
//
// never a crash, never a stray exception type.  The sanitizer CI job runs
// this under ASan/UBSan with a reduced case count.
//
// Reproducibility follows the differential-fuzz convention: every case
// derives from a 64-bit seed printed on failure.  Replay one case with
// MTG_FUZZ_SEED=<seed>; rescale the sweep with MTG_FUZZ_CASES=<n>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "format/catalog_io.hpp"
#include "march/catalog.hpp"

namespace mtg {
namespace {

// splitmix64, as in tests/sim/test_differential_fuzz.cpp: seed-stable
// across platforms and standard libraries.
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }
};

std::vector<std::string> seed_documents() {
  std::vector<std::string> docs;
  for (const FaultList& list :
       {fault_list_2(), standard_simple_static_faults(),
        retention_fault_list(), decoder_fault_list()}) {
    docs.push_back(to_canonical_string(list));
  }
  MarchSuite suite;
  suite.tests = all_catalog_tests();
  docs.push_back(to_canonical_string(suite));
  docs.push_back(
      "# hand-written sample\n"
      "faultlist v1\n"
      "name fuzz seed\n"
      "\n"
      "simple <0/1/-> a_pos=-1 v_pos=0\n"
      "linked <0/1/-> -> <1w1/0/-> cells=1 a1=-1 a2=-1 v=0\n"
      "decoder cls=2 bit=5 wired=1\n");
  docs.push_back(
      "suite v1\n"
      "# a comment between records\n"
      "test \"A \\\"quoted\\\" name\" {c(w0); ^(r0,w1); v(r1,w0)}\n");
  return docs;
}

std::string mutate(std::string doc, Rng& rng) {
  const std::size_t rounds = 1 + rng.below(3);
  for (std::size_t round = 0; round < rounds && !doc.empty(); ++round) {
    switch (rng.below(6)) {
      case 0:  // truncate
        doc.resize(rng.below(doc.size() + 1));
        break;
      case 1:  // flip a byte
        doc[rng.below(doc.size())] = static_cast<char>(rng.below(256));
        break;
      case 2:  // insert a byte
        doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(doc.size() + 1)),
                   static_cast<char>(rng.below(256)));
        break;
      case 3:  // delete a byte
        doc.erase(doc.begin() +
                  static_cast<std::ptrdiff_t>(rng.below(doc.size())));
        break;
      case 4: {  // duplicate a random line somewhere else
        const std::size_t start = doc.rfind('\n', rng.below(doc.size()));
        const std::size_t from = start == std::string::npos ? 0 : start + 1;
        std::size_t to = doc.find('\n', from);
        if (to == std::string::npos) to = doc.size();
        const std::string line = doc.substr(from, to - from) + "\n";
        doc.insert(rng.below(doc.size() + 1), line);
        break;
      }
      case 5: {  // splice the head of one document onto the tail of another
        const std::vector<std::string> seeds = seed_documents();
        const std::string& other = seeds[rng.below(seeds.size())];
        doc = doc.substr(0, rng.below(doc.size() + 1)) +
              other.substr(rng.below(other.size() + 1));
        break;
      }
    }
  }
  return doc;
}

/// Applies the fuzz invariant to one mutated document; returns a failure
/// description, or an empty string when the invariant holds.
std::string run_one(const std::string& doc) {
  try {
    switch (detect_catalog_kind(doc, "fuzz")) {
      case CatalogKind::FaultListFile: {
        const FaultList list = parse_fault_list_text(doc, "fuzz");
        const std::string canon = to_canonical_string(list);
        const FaultList reparsed = parse_fault_list_text(canon, "fuzz2");
        if (!(reparsed == list)) return "accepted list fails to round-trip";
        if (to_canonical_string(reparsed) != canon) {
          return "canonical list serialization is not a fixpoint";
        }
        return "";
      }
      case CatalogKind::SuiteFile: {
        const MarchSuite suite = parse_march_suite_text(doc, "fuzz");
        const std::string canon = to_canonical_string(suite);
        const MarchSuite reparsed = parse_march_suite_text(canon, "fuzz2");
        if (!(reparsed == suite)) return "accepted suite fails to round-trip";
        if (to_canonical_string(reparsed) != canon) {
          return "canonical suite serialization is not a fixpoint";
        }
        return "";
      }
    }
    return "detect_catalog_kind returned an unknown kind";
  } catch (const ParseError& e) {
    if (e.position().line < 1 || e.position().column < 1) {
      return std::string("ParseError without a valid position: ") + e.what();
    }
    return "";  // clean, position-bearing rejection
  } catch (const std::exception& e) {
    return std::string("unexpected exception type: ") + e.what();
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(FormatFuzz, MutatedCatalogsParseCleanlyOrRejectWithPosition) {
  const std::vector<std::string> seeds = seed_documents();
  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_FUZZ_CASES", 1500);

  std::size_t failures = 0;
  for (std::uint64_t i = 0; i < cases && failures < 5; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : base_seed + i;
    Rng rng(seed);
    const std::string doc = mutate(seeds[rng.below(seeds.size())], rng);
    const std::string failure = run_one(doc);
    if (!failure.empty()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " (replay: MTG_FUZZ_SEED=" << seed
                    << ")\n"
                    << failure << "\ndocument (" << doc.size()
                    << " bytes):\n"
                    << doc.substr(0, 2000);
    }
  }
}

}  // namespace
}  // namespace mtg
