#include "fp/linked_fault.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

FaultPrimitive cfds_01_v0() {
  return FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);  // <0w1;0/1/->
}
FaultPrimitive cfds_01_v1() {
  return FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::One);  // <0w1;1/0/->
}
FaultPrimitive cfds_10_v1() {
  return FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One);  // <1w0;1/0/->
}

TEST(LinkedLayout, Factories) {
  EXPECT_EQ(LinkedLayout::single_cell().to_string(), "v");
  EXPECT_EQ(LinkedLayout::two_cell(0, 0, 1).to_string(), "a<v");
  EXPECT_EQ(LinkedLayout::two_cell(1, 1, 0).to_string(), "v<a");
  EXPECT_EQ(LinkedLayout::two_cell(0, -1, 1).to_string(), "a1<v");
  EXPECT_EQ(LinkedLayout::two_cell(-1, 1, 0).to_string(), "v<a2");
  EXPECT_EQ(LinkedLayout::three_cell(0, 1, 2).to_string(), "a1<a2<v");
  EXPECT_EQ(LinkedLayout::three_cell(2, 0, 1).to_string(), "a2<v<a1");
}

TEST(CheckLink, PaperEquation6IsLinkedViaTwoAggressors) {
  // FP1 = <0w1;0/1/->, FP2 = <0w1;1/0/-> with distinct aggressors (Fig. 1).
  const LinkCheck check =
      check_link(cfds_01_v0(), cfds_01_v1(), LinkedLayout::three_cell(0, 1, 2));
  EXPECT_TRUE(check.structurally_linked) << check.reason;
  EXPECT_TRUE(check.fp1_fired);
  EXPECT_TRUE(check.fp2_fired);
  EXPECT_TRUE(check.fully_masked);
}

TEST(CheckLink, PaperEquation12IsLinkedViaSharedAggressor) {
  // <0w1;0/1/-> → <1w0;1/0/-> sharing the aggressor (Equations 12-14).
  const LinkCheck check =
      check_link(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(0, 0, 1));
  EXPECT_TRUE(check.structurally_linked) << check.reason;
  EXPECT_TRUE(check.fp1_fired);
  EXPECT_TRUE(check.fp2_fired);
  EXPECT_TRUE(check.fully_masked);
}

TEST(CheckLink, RejectsEqualFaultEffects) {
  // F2 must equal not(F1).
  const LinkCheck check =
      check_link(cfds_01_v0(), cfds_01_v0(), LinkedLayout::three_cell(0, 1, 2));
  EXPECT_FALSE(check.structurally_linked);
  EXPECT_NE(check.reason.find("F2"), std::string::npos);
}

TEST(CheckLink, RejectsBrokenChain) {
  // FP2 sensitized on victim state 0, but Fv1 leaves the victim at 1.
  const FaultPrimitive fp2_wrong_state =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);  // v_state 0
  const LinkCheck check = check_link(cfds_01_v0(), fp2_wrong_state,
                                     LinkedLayout::three_cell(0, 1, 2));
  EXPECT_FALSE(check.structurally_linked);
}

TEST(CheckLink, RejectsImmediatelyDetectingFp1) {
  // RDF cannot be masked: its sensitizing read already exposes it.
  const LinkCheck check =
      check_link(FaultPrimitive::rdf(Bit::Zero), FaultPrimitive::wdf(Bit::One),
                 LinkedLayout::single_cell());
  EXPECT_FALSE(check.structurally_linked);
}

TEST(CheckLink, RejectsDoubleStateFaults) {
  const LinkCheck check =
      check_link(FaultPrimitive::cfst(Bit::One, Bit::Zero),
                 FaultPrimitive::cfst(Bit::One, Bit::One),
                 LinkedLayout::two_cell(0, 0, 1));
  EXPECT_FALSE(check.structurally_linked);
}

TEST(CheckLink, SingleCellTfWdfLink) {
  // TF↑ → WDF0: w1 fails (cell stays 0), the next non-transition w0 then
  // flips the cell — a classic single-cell link.
  const LinkCheck check =
      check_link(FaultPrimitive::tf(Bit::Zero), FaultPrimitive::wdf(Bit::Zero),
                 LinkedLayout::single_cell());
  EXPECT_TRUE(check.structurally_linked) << check.reason;
  EXPECT_TRUE(check.fp1_fired);
  EXPECT_TRUE(check.fp2_fired);
  // The WDF inverts the error rather than hiding it completely.
  EXPECT_FALSE(check.fully_masked);
}

TEST(CheckLink, SingleCellWdfRdfLinkFullyMasks) {
  const LinkCheck check =
      check_link(FaultPrimitive::wdf(Bit::Zero), FaultPrimitive::rdf(Bit::One),
                 LinkedLayout::single_cell());
  EXPECT_TRUE(check.structurally_linked);
  EXPECT_TRUE(check.fully_masked);
}

TEST(LinkedFault, ConstructionValidates) {
  EXPECT_NO_THROW(
      LinkedFault(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(0, 0, 1)));
  EXPECT_THROW(
      LinkedFault(cfds_01_v0(), cfds_01_v0(), LinkedLayout::three_cell(0, 1, 2)),
      Error);
  // Layout incoherence: FP1 is two-cell but no a1 position given.
  EXPECT_THROW(
      LinkedFault(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(-1, 0, 1)),
      Error);
}

TEST(LinkedFault, NameCarriesLayout) {
  const LinkedFault lf(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(0, 0, 1));
  EXPECT_EQ(lf.name(), "CFds<0w1;0>→CFds<1w0;1> [a<v]");
  EXPECT_EQ(lf.num_cells(), 2);
  EXPECT_TRUE(lf.fully_masking());
}

TEST(ExpandLinkedAfps, PaperEquation13) {
  // (00, w1_0, 11, 10) → (11, w0_0, 00, 01) on the 2-cell model; the paper
  // writes states LSB-first with the aggressor at the lowest address.
  const LinkedFault lf(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(0, 0, 1));
  const auto pairs = expand_linked_afps(lf, {0, 1}, 2);
  ASSERT_EQ(pairs.size(), 1u);
  const LinkedAfpPair& pair = pairs[0];
  EXPECT_EQ(pair.afp1.initial.to_string(), "00");
  EXPECT_EQ(pair.afp1.faulty.to_string(), "11");
  EXPECT_EQ(pair.afp1.good.to_string(), "10");
  EXPECT_EQ(pair.afp2.initial.to_string(), "11");  // I2 = Fv1 (Definition 7)
  EXPECT_EQ(pair.afp2.faulty.to_string(), "00");
  EXPECT_EQ(pair.afp2.good.to_string(), "01");
  // Equation 14: TPs (00, w1_0, r0_1) → (11, w0_0, r1_1).
  EXPECT_EQ(to_string(pair.tp1.ops), "w1[0],r0[1]");
  EXPECT_EQ(to_string(pair.tp2.ops), "w0[0],r1[1]");
}

TEST(ExpandLinkedAfps, ChainInvariantHoldsOnLargerModels) {
  const LinkedFault lf(cfds_01_v0(), cfds_01_v1(), LinkedLayout::three_cell(0, 1, 2));
  for (const LinkedAfpPair& pair : expand_linked_afps(lf, {0, 1, 2}, 3)) {
    EXPECT_EQ(pair.afp2.initial, pair.afp1.faulty);        // I2 = Fv1
    EXPECT_EQ(pair.tp1.end_state, pair.afp1.faulty);
    EXPECT_EQ(pair.afp1.victim, pair.afp2.victim);
  }
}

TEST(ExpandLinkedAfps, ValidatesCellMapping) {
  const LinkedFault lf(cfds_01_v0(), cfds_10_v1(), LinkedLayout::two_cell(0, 0, 1));
  EXPECT_THROW(expand_linked_afps(lf, {0}, 2), Error);      // size mismatch
  EXPECT_THROW(expand_linked_afps(lf, {1, 0}, 2), Error);   // not ascending
  EXPECT_THROW(expand_linked_afps(lf, {0, 5}, 2), Error);   // out of range
}

}  // namespace
}  // namespace mtg
