#include "fp/fp_library.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace mtg {
namespace {

TEST(FpLibrary, SingleCellCountMatchesTaxonomy) {
  // 12 single-cell static FPs: SF, TF, WDF, RDF, DRDF, IRF × both polarities.
  EXPECT_EQ(all_single_cell_static_fps().size(), 12u);
}

TEST(FpLibrary, TwoCellCountMatchesTaxonomy) {
  // 36 two-cell static FPs: CFst 4, CFds 12, CFtr 4, CFwd 4, CFrd 4,
  // CFdr 4, CFir 4.
  EXPECT_EQ(all_two_cell_static_fps().size(), 36u);
}

TEST(FpLibrary, FullSpaceIsUnionOfBoth) {
  EXPECT_EQ(all_static_fps().size(), 48u);
}

TEST(FpLibrary, NoDuplicates) {
  const auto fps = all_static_fps();
  std::set<FaultPrimitive> unique(fps.begin(), fps.end());
  EXPECT_EQ(unique.size(), fps.size());
}

TEST(FpLibrary, ClassHistogram) {
  std::map<FpClass, int> histogram;
  for (const FaultPrimitive& fp : all_static_fps()) {
    ++histogram[fp.classify()];
  }
  EXPECT_EQ(histogram[FpClass::SF], 2);
  EXPECT_EQ(histogram[FpClass::TF], 2);
  EXPECT_EQ(histogram[FpClass::WDF], 2);
  EXPECT_EQ(histogram[FpClass::RDF], 2);
  EXPECT_EQ(histogram[FpClass::DRDF], 2);
  EXPECT_EQ(histogram[FpClass::IRF], 2);
  EXPECT_EQ(histogram[FpClass::CFst], 4);
  EXPECT_EQ(histogram[FpClass::CFds], 12);
  EXPECT_EQ(histogram[FpClass::CFtr], 4);
  EXPECT_EQ(histogram[FpClass::CFwd], 4);
  EXPECT_EQ(histogram[FpClass::CFrd], 4);
  EXPECT_EQ(histogram[FpClass::CFdr], 4);
  EXPECT_EQ(histogram[FpClass::CFir], 4);
}

TEST(FpLibrary, CfdsSensitizers) {
  // 0w0, 0w1, 1w0, 1w1, 0r0, 1r1 — six aggressor sensitizers.
  const auto sensitizers = cfds_aggressor_sensitizers();
  EXPECT_EQ(sensitizers.size(), 6u);
  std::set<std::pair<Bit, SenseOp>> unique(sensitizers.begin(),
                                           sensitizers.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(FpLibrary, EveryFpHasDistinctNotation) {
  std::set<std::string> notations;
  for (const FaultPrimitive& fp : all_static_fps()) {
    notations.insert(fp.notation());
  }
  EXPECT_EQ(notations.size(), 48u);
}

TEST(FpLibrary, RetentionFps) {
  // DRF0, DRF1 plus the four CFrt variants; disjoint from the static space.
  const auto retention = all_retention_fps();
  ASSERT_EQ(retention.size(), 6u);
  std::map<FpClass, int> histogram;
  for (const FaultPrimitive& fp : retention) {
    EXPECT_TRUE(fp.is_retention()) << fp.notation();
    ++histogram[fp.classify()];
  }
  EXPECT_EQ(histogram[FpClass::DRF], 2);
  EXPECT_EQ(histogram[FpClass::CFrt], 4);

  const auto everything = all_fps();
  EXPECT_EQ(everything.size(), 54u);
  std::set<FaultPrimitive> unique(everything.begin(), everything.end());
  EXPECT_EQ(unique.size(), 54u);
}

}  // namespace
}  // namespace mtg
