#include "sim/fault_instance.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "memory/pattern_graph.hpp"

namespace mtg {
namespace {

TEST(FaultInstance, SingleCellFaultInstantiatesAtEveryCell) {
  const SimpleFault fault = SimpleFault::single(FaultPrimitive::tf(Bit::Zero));
  const auto instances = instantiate(fault, 5, 0);
  EXPECT_EQ(instances.size(), 5u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].fps.size(), 1u);
    EXPECT_EQ(instances[i].fps[0].v_cell, i);
    EXPECT_EQ(instances[i].fps[0].a_cell, i);
  }
}

TEST(FaultInstance, CoupledFaultRespectsLayout) {
  const SimpleFault below =
      SimpleFault::coupled(FaultPrimitive::cfst(Bit::Zero, Bit::One), true);
  for (const FaultInstance& inst : instantiate(below, 4, 0)) {
    EXPECT_LT(inst.fps[0].a_cell, inst.fps[0].v_cell);
  }
  const SimpleFault above =
      SimpleFault::coupled(FaultPrimitive::cfst(Bit::Zero, Bit::One), false);
  const auto instances = instantiate(above, 4, 0);
  EXPECT_EQ(instances.size(), 6u);  // C(4,2)
  for (const FaultInstance& inst : instances) {
    EXPECT_GT(inst.fps[0].a_cell, inst.fps[0].v_cell);
  }
}

TEST(FaultInstance, LinkedFaultInstanceCount) {
  const LinkedFault lf = disturb_coupling_linked_fault();  // 2 cells, a<v
  EXPECT_EQ(instantiate(lf, 6, 3).size(), 15u);  // C(6,2)
  for (const FaultInstance& inst : instantiate(lf, 6, 3)) {
    EXPECT_EQ(inst.fault_index, 3u);
    ASSERT_EQ(inst.fps.size(), 2u);
    EXPECT_EQ(inst.fps[0].v_cell, inst.fps[1].v_cell);  // shared victim
    EXPECT_LT(inst.fps[0].a_cell, inst.fps[0].v_cell);  // a < v layout
  }
}

TEST(FaultInstance, ThreeCellLayoutOrdering) {
  const FaultPrimitive fp1 =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);
  const FaultPrimitive fp2 =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::One);
  // Layout a2 < v < a1.
  const LinkedFault lf(fp1, fp2, LinkedLayout::three_cell(2, 0, 1));
  const auto instances = instantiate(lf, 5, 0);
  EXPECT_EQ(instances.size(), 10u);  // C(5,3)
  for (const FaultInstance& inst : instances) {
    const std::size_t a1 = inst.fps[0].a_cell;
    const std::size_t a2 = inst.fps[1].a_cell;
    const std::size_t v = inst.fps[0].v_cell;
    EXPECT_LT(a2, v);
    EXPECT_LT(v, a1);
  }
}

TEST(FaultInstance, MemoryTooSmall) {
  const LinkedFault lf = disturb_coupling_linked_fault();
  EXPECT_THROW(instantiate(lf, 1, 0), Error);
}

TEST(FaultInstance, InstantiateAllIndexing) {
  FaultList list;
  list.name = "mixed";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::One)));
  list.linked.push_back(disturb_coupling_linked_fault());

  EXPECT_EQ(fault_count(list), 3u);
  EXPECT_EQ(fault_name(list, 0), "TF↑ [v]");
  EXPECT_EQ(fault_name(list, 2), "CFds<0w1;0>→CFds<1w0;1> [a<v]");
  EXPECT_THROW(fault_name(list, 3), Error);

  const auto instances = instantiate_all(list, 3);
  EXPECT_EQ(instances.size(), 3u + 3u + 3u);  // 3+3 single-cell, C(3,2)=3
  for (const FaultInstance& inst : instances) {
    EXPECT_LT(inst.fault_index, 3u);
    EXPECT_FALSE(inst.description.empty());
  }
}

}  // namespace
}  // namespace mtg
