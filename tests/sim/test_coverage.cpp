#include "sim/coverage.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"

namespace mtg {
namespace {

FaultList small_list() {
  FaultList list;
  list.name = "small";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::wdf(Bit::Zero)));
  list.linked.push_back(disturb_coupling_linked_fault());
  return list;
}

TEST(Coverage, FullCoverageReport) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, march_sl(), small_list());
  EXPECT_TRUE(report.full_coverage());
  EXPECT_EQ(report.faults_total(), 3u);
  EXPECT_EQ(report.faults_covered(), 3u);
  EXPECT_DOUBLE_EQ(report.fault_coverage_percent(), 100.0);
  EXPECT_DOUBLE_EQ(report.instance_coverage_percent(), 100.0);
  EXPECT_TRUE(report.missed_faults().empty());
  EXPECT_EQ(report.test_complexity, 41u);
}

TEST(Coverage, PartialCoverageIdentifiesMisses) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, mats_plus(), small_list());
  EXPECT_FALSE(report.full_coverage());
  // MATS+ has no non-transition writes: WDF0 escapes; the linked CF also
  // escapes one of its orders.
  const auto missed = report.missed_faults();
  EXPECT_FALSE(missed.empty());
  bool wdf_missed = false;
  for (const std::string& name : missed) {
    if (name == "WDF0 [v]") wdf_missed = true;
  }
  EXPECT_TRUE(wdf_missed);
  for (const CoverageEntry& entry : report.entries) {
    if (!entry.covered) {
      EXPECT_FALSE(entry.escape_description.empty()) << entry.fault;
    }
    EXPECT_LE(entry.detected, entry.instances);
  }
}

TEST(Coverage, InstanceAccounting) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, march_sl(), small_list());
  // 4 + 4 single-cell instances, C(4,2) = 6 linked instances.
  EXPECT_EQ(report.instances_total(), 4u + 4u + 6u);
  EXPECT_EQ(report.instances_detected(), report.instances_total());
}

TEST(Coverage, SummaryMentionsTestAndList) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, march_sl(), small_list());
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("March SL"), std::string::npos);
  EXPECT_NE(summary.find("small"), std::string::npos);
  EXPECT_NE(summary.find("41n"), std::string::npos);
}

TEST(Coverage, RejectsInvalidTests) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const MarchTest invalid = parse_march_test("{c(r0,w0)}", "bad");
  EXPECT_THROW(evaluate_coverage(simulator, invalid, small_list()), Error);
}

TEST(Coverage, EmptyListReportsZeroNotVacuousFull) {
  // The divide-by-empty convention used to claim 100% coverage / full
  // coverage for an *empty* fault list; an empty report now says so
  // explicitly and reports 0%.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultList empty;
  empty.name = "empty";
  const CoverageReport report =
      evaluate_coverage(simulator, mats_plus(), empty);
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.full_coverage());
  EXPECT_DOUBLE_EQ(report.fault_coverage_percent(), 0.0);
  EXPECT_DOUBLE_EQ(report.instance_coverage_percent(), 0.0);
  EXPECT_NE(report.summary().find("empty fault list"), std::string::npos)
      << report.summary();
}

void expect_same_report(const CoverageReport& a, const CoverageReport& b,
                        const std::string& label) {
  ASSERT_EQ(a.entries.size(), b.entries.size()) << label;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const CoverageEntry& x = a.entries[i];
    const CoverageEntry& y = b.entries[i];
    EXPECT_EQ(x.fault_index, y.fault_index) << label << " entry " << i;
    EXPECT_EQ(x.fault, y.fault) << label << " entry " << i;
    EXPECT_EQ(x.instances, y.instances) << label << " entry " << i;
    EXPECT_EQ(x.detected, y.detected) << label << " entry " << i;
    EXPECT_EQ(x.covered, y.covered) << label << " entry " << i;
    EXPECT_EQ(x.escape_description, y.escape_description)
        << label << " entry " << i;
  }
  EXPECT_EQ(a.summary(), b.summary()) << label;
}

TEST(Coverage, DeterministicAcrossThreadCounts) {
  // The coverage matrix must be identical for every worker count — counts,
  // per-fault verdicts and the reported first escaping instance alike —
  // and must match the sequential scalar oracle.
  const MarchTest test = march_c_minus();  // partial coverage: real escapes
  const FaultList list = fault_list_2();

  SimulatorOptions scalar_options;
  scalar_options.memory_size = 6;
  scalar_options.use_packed_engine = false;
  const CoverageReport reference =
      evaluate_coverage(FaultSimulator(scalar_options), test, list);
  EXPECT_FALSE(reference.full_coverage());

  const std::size_t hardware = std::thread::hardware_concurrency();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              hardware == 0 ? std::size_t{4} : hardware}) {
    SimulatorOptions options;
    options.memory_size = 6;
    options.coverage_threads = threads;
    const CoverageReport report =
        evaluate_coverage(FaultSimulator(options), test, list);
    expect_same_report(reference, report,
                       "threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace mtg
