// MatrixService — the resilient coverage-matrix batch service.
//
// Promotes the one-shot coverage CLI into a long-running service: clients
// submit (test, fault list, n, cap) jobs; the service evaluates them
// concurrently on the bounded thread pool (common/parallel.hpp submit queue)
// and streams per-job results.  Robustness is the headline — every failure
// mode has a defined, non-corrupting outcome:
//
//  * Bounded submission queue with an explicit backpressure policy: when
//    `queue_capacity` jobs are already queued, submit() either blocks until
//    a slot frees (Block) or returns a Rejected submission immediately
//    (Reject).  Dispatch is fair FIFO — the pool's task queue preserves
//    submission order.
//  * Every job carries a CancelToken (common/cancel.hpp) parented to one
//    service-wide token: per-job cancel(), per-job deadlines (measured from
//    submission, so queue time counts), service-wide cancel_all()/shutdown
//    and an optional external token (SIGINT) all trip the same cooperative
//    switch.  evaluate_coverage polls it at chunk granularity, so a doomed
//    job stops within a few instance simulations and reports
//    Cancelled/DeadlineExceeded — never a partial report.
//  * Engine exceptions (invalid tests, internal errors) are captured on the
//    worker (the pool's exception plumbing) and surface as a per-job Failed
//    status with the message; the service keeps serving.
//  * Shared caches keyed by the canonical-form stable hashes (the sweep
//    store's key scheme): the CompiledTest (per test — includes the shared
//    fault-free trace) and the instantiation (per list × n × cap) are
//    computed ONCE and reused by every job that names them, with
//    single-flight deduplication — concurrent jobs for the same key wait on
//    the first computation instead of duplicating it.
//  * Optional SweepStore read-through/write-back: a verified record is a
//    store hit (no evaluation); computed jobs persist their report.  The
//    store's own degradation ladder applies unchanged — retries with
//    backoff + jitter, then store-less completion, then (sticky failure)
//    the store disables itself for all jobs and the service keeps serving.
//    Results are byte-identical with or without a (failing) store.
//  * Optional static serving tier (`static_prefilter`): jobs whose report
//    the symbolic analyzer fully determines — definite verdicts for every
//    fault plus analytic instance counts under the job's cap — are answered
//    without simulation (analysis/static_analyzer.hpp's
//    static_coverage_report), byte-identical to the simulated report.  The
//    same single-flight discipline applies (one static report per
//    (test, list, n, cap) key), store write-back still happens, and
//    cancellation/deadlines are honoured before serving.  Jobs the analyzer
//    cannot fully determine fall through to simulation unchanged.
//  * A fault-injection seam for the scheduler itself: `scheduler_hook` is
//    consulted once per dispatch and may delay, fail or cancel the k-th job
//    — the harness (tests/service/) proves that completed jobs' reports stay
//    byte-identical to solo evaluate_coverage runs under every injection
//    schedule and thread count.
//
// Determinism argument: each job evaluates sequentially on one worker
// (coverage_threads = 1 — the parallelism lives ACROSS jobs, the sweep
// grid's shape), and the shared artifacts are immutable after construction,
// so a completed job's report cannot depend on the worker count, the
// dispatch schedule, or what other jobs were in flight.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/cancel.hpp"
#include "common/parallel.hpp"
#include "fp/fault_list.hpp"
#include "march/march_test.hpp"
#include "sim/coverage.hpp"

namespace mtg {

class SweepStore;
struct CompiledTest;

/// Lifecycle of a job.  Terminal states: Completed, Failed, Cancelled,
/// DeadlineExceeded, Rejected.
enum class JobStatus : unsigned char {
  Queued,            ///< admitted, waiting for a worker
  Running,           ///< evaluating on a worker
  Completed,         ///< report is valid (evaluated or loaded from store)
  Failed,            ///< the engine threw; `error` holds the message
  Cancelled,         ///< cancel()/cancel_all()/external token tripped first
  DeadlineExceeded,  ///< the job's deadline passed before it completed
  Rejected,          ///< bounced by the backpressure policy, never queued
};

const char* to_string(JobStatus status) noexcept;

/// One coverage-matrix job: evaluate `test` against `list` at memory size
/// `memory_size` with the per-fault instantiation cap
/// `max_instances_per_fault` (the sweep-store key fields, exactly).
struct MatrixJob {
  MarchTest test;
  /// Shared: many jobs typically name the same list, and the instantiation
  /// cache borrows it during evaluation.  Must not be null at submit().
  std::shared_ptr<const FaultList> list;
  std::size_t memory_size = 8;
  std::size_t max_instances_per_fault = 4096;
  /// Per-job deadline measured from submission (0 = none).  Queue time
  /// counts: a job that waited out its whole budget in the queue reports
  /// DeadlineExceeded without evaluating.
  std::chrono::milliseconds deadline{0};
};

struct MatrixJobResult {
  std::size_t job_id = 0;
  JobStatus status = JobStatus::Queued;
  /// Valid only when status == Completed; never partial otherwise.
  CoverageReport report;
  std::string error;  ///< Failed: the exception message
  double queue_ms = 0;  ///< submission → dispatch
  double run_ms = 0;    ///< dispatch → terminal state
  bool from_store = false;          ///< report loaded, not evaluated
  bool served_statically = false;   ///< report proved by the analyzer
  bool compiled_cache_hit = false;  ///< reused a cached CompiledTest
  bool instances_cache_hit = false; ///< reused a cached instantiation
};

enum class BackpressurePolicy : unsigned char {
  Block,   ///< submit() waits for a queue slot
  Reject,  ///< submit() returns a Rejected submission immediately
};

/// Cumulative service counters (test/bench observability).
struct MatrixServiceStats {
  std::uint64_t submitted = 0;  ///< admitted jobs (excludes rejected)
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_saves = 0;
  /// Jobs served by the static prefilter (no simulation; store hits win).
  std::uint64_t static_served = 0;
  std::uint64_t compiled_cache_hits = 0;
  std::uint64_t compiled_cache_misses = 0;
  std::uint64_t instances_cache_hits = 0;
  std::uint64_t instances_cache_misses = 0;
  /// Fault-instance evaluations actually simulated (store hits excluded):
  /// the throughput numerator of bench_service.
  std::uint64_t instance_evaluations = 0;
};

// -- Scheduler fault injection (test seam) -----------------------------------
// The I/O half of the fault harness is FaultInjectedStorage wrapped under
// the SweepStore; this is the scheduling half: the hook is consulted exactly
// once per dispatch (1-based dispatch index, FIFO order) and can perturb the
// k-th job the way a sick scheduler would.

enum class SchedulerFaultAction : unsigned char {
  None,
  Delay,            ///< sleep `delay` before the job runs (reorders races)
  Fail,             ///< the job reports Failed without evaluating
  CancelBeforeRun,  ///< trip the job's token before evaluation starts
  CancelMidRun,     ///< trip the token after setup, mid-evaluation path
};

struct SchedulerFault {
  SchedulerFaultAction action = SchedulerFaultAction::None;
  std::chrono::milliseconds delay{0};  ///< for Delay
};

using SchedulerHook =
    std::function<SchedulerFault(std::size_t dispatch_index,
                                 std::size_t job_id)>;

struct MatrixServiceOptions {
  /// Worker threads (0 = hardware concurrency, minimum 1).
  std::size_t threads = 0;
  /// Jobs admitted but not yet dispatched before backpressure applies.
  std::size_t queue_capacity = 256;
  BackpressurePolicy when_full = BackpressurePolicy::Block;
  /// Optional read-through/write-back result store (caller opens it and
  /// keeps it alive; its degradation ladder is self-contained).
  SweepStore* store = nullptr;
  /// Optional external kill switch (e.g. the CLI's SIGINT token); tripping
  /// it cancels every queued and running job.
  const CancelToken* cancel = nullptr;
  /// Called on the worker thread the moment a job reaches a terminal state
  /// (streaming front ends).  Must be thread-safe; keep it quick.
  std::function<void(const MatrixJobResult&)> on_result;
  /// Scheduler fault injection; leave empty in production.
  SchedulerHook scheduler_hook;
  // SimulatorOptions fields shared by every job.
  bool use_packed_engine = true;
  bool both_power_on_states = true;
  std::size_t max_any_order_elements = 10;
  /// Serve jobs the symbolic analyzer fully determines without simulating
  /// them (byte-identical reports — the differential tests and the schedule
  /// fuzzer lock the identity).  Off by default.
  bool static_prefilter = false;
};

class MatrixService {
 public:
  explicit MatrixService(MatrixServiceOptions options = {});
  /// Cancels everything still queued or running, waits for in-flight jobs
  /// to reach a terminal state, then joins the workers.
  ~MatrixService();

  MatrixService(const MatrixService&) = delete;
  MatrixService& operator=(const MatrixService&) = delete;

  struct Submission {
    std::size_t job_id = 0;
    /// True when the Reject backpressure policy bounced the job; wait()
    /// then reports status Rejected.
    bool rejected = false;
  };

  /// Admits a job (job.list must be non-null).  With a full queue, blocks
  /// or rejects per the backpressure policy.  Throws only on misuse (null
  /// list, submit after shutdown) — engine failures surface as the job's
  /// Failed status, not here.
  Submission submit(MatrixJob job);

  /// Trips the job's token: a queued job reports Cancelled at dispatch, a
  /// running one stops at its next cancellation point.  False for unknown
  /// ids or jobs already terminal.
  bool cancel(std::size_t job_id);

  /// Trips every non-terminal job's token.
  void cancel_all();

  /// Blocks until the job reaches a terminal state and returns its result.
  MatrixJobResult wait(std::size_t job_id);

  /// Blocks until every submitted job is terminal; results in job-id order.
  std::vector<MatrixJobResult> drain();

  MatrixServiceStats stats() const;

  /// Jobs admitted but not yet dispatched (the backpressure queue depth).
  std::size_t queued() const;

 private:
  struct JobState;

  void run_job(const std::shared_ptr<JobState>& state);
  void finish(const std::shared_ptr<JobState>& state, JobStatus status,
              std::string error);
  std::shared_ptr<const CompiledTest> compiled_for(const MarchTest& test,
                                                   std::uint64_t test_hash,
                                                   bool& cache_hit);
  std::shared_ptr<const std::vector<FaultInstance>> instances_for(
      const FaultList& list, std::uint64_t list_hash, std::size_t n,
      std::size_t cap, bool& cache_hit);
  /// Single-flight static_coverage_report per (test, list, n, cap) key.
  /// The pointee optional is empty when the analyzer declined the job.
  std::shared_ptr<const std::optional<CoverageReport>> static_report_for(
      const MarchTest& test, const FaultList& list, std::uint64_t test_hash,
      std::uint64_t list_hash, std::size_t n, std::size_t cap);

  MatrixServiceOptions options_;
  CancelToken service_cancel_;  ///< parent of every job token

  mutable std::mutex mutex_;
  std::condition_variable job_done_;  ///< wait()/drain()
  std::condition_variable space_;     ///< Block backpressure
  std::map<std::size_t, std::shared_ptr<JobState>> jobs_;
  std::size_t next_id_ = 0;
  std::size_t queued_ = 0;
  std::size_t dispatched_ = 0;  ///< dispatch counter for the scheduler hook
  MatrixServiceStats stats_;
  bool shutting_down_ = false;

  // Single-flight caches: the future materializes once, every waiter shares
  // the immutable artifact.  A failed computation is erased so a later job
  // can retry.
  std::map<std::uint64_t,
           std::shared_future<std::shared_ptr<const CompiledTest>>>
      compiled_cache_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::shared_future<std::shared_ptr<const std::vector<FaultInstance>>>>
      instances_cache_;
  std::map<
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>,
      std::shared_future<std::shared_ptr<const std::optional<CoverageReport>>>>
      static_cache_;

  // Declared last: destroyed first, so the worker drain in ~ThreadPool runs
  // while the service state above is still alive.
  ThreadPool pool_;
};

}  // namespace mtg
